#include "analysis/seu.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <stdexcept>

#include "exec/parallel.hpp"
#include "fault/checkpoint.hpp"
#include "obs/probe.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace flopsim::analysis {

namespace {

bool same_output(const std::optional<units::UnitOutput>& a,
                 const std::optional<units::UnitOutput>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->result == b->result && a->flags == b->flags;
}

/// Per-trial verdict of one unit-campaign fault, filled by whichever
/// worker owns the trial and reduced in fault-list order afterwards.
struct UnitTrial {
  bool corrupted = false;         // copy 0's own output vs golden
  bool hardened_differs = false;  // post-voter output vs golden
  bool mismatch = false;          // checker fired at any cycle
};

// --- checkpoint plumbing shared by the campaign drivers ----------------

/// One trial verdict <-> one sidecar byte. Bits: 0 corrupted,
/// 1 hardened_differs, 2 mismatch. The byte IS the checkpoint format for
/// unit campaigns; changing it invalidates existing sidecars (bump the
/// spec-hash salt below if it ever has to change).
std::uint8_t encode_unit_trial(const UnitTrial& t) {
  return static_cast<std::uint8_t>((t.corrupted ? 1 : 0) |
                                   (t.hardened_differs ? 2 : 0) |
                                   (t.mismatch ? 4 : 0));
}

UnitTrial decode_unit_trial(std::uint8_t b) {
  UnitTrial t;
  t.corrupted = (b & 1) != 0;
  t.hardened_differs = (b & 2) != 0;
  t.mismatch = (b & 4) != 0;
  return t;
}

/// Whether a unit trial reduces to "silent" under the campaign's scheme —
/// factored out so the running convergence tally cannot drift from the
/// final ordered reduction.
bool unit_trial_silent(const UnitTrial& t, fault::Scheme scheme) {
  if (scheme == fault::Scheme::kTmr) return t.hardened_differs;
  return t.corrupted && !t.mismatch;
}

// --- evaluator fast path ------------------------------------------------

/// Whether the compiled/bitsliced evaluators' guarantees cover this
/// campaign: every fault a one-shot data-lane latch flip, and the compiled
/// chain free of the behaviours (DONE writes, nondeterminism) that make
/// the scheme mapping below unsound. Anything else runs interpreted.
bool fast_path_covers(const std::vector<fault::Fault>& faults,
                      const rtl::CompileStats& stats) {
  if (stats.alters_valid || stats.nondeterministic) return false;
  for (const fault::Fault& f : faults) {
    if (f.site != fault::FaultSite::kStageLatch || f.lane < 0 ||
        f.lane >= rtl::kMaxSignals || f.bit < 0 || f.bit >= 64) {
      return false;
    }
  }
  return true;
}

/// Map an evaluator verdict onto the scheme-aware trial the legacy
/// HardenedUnit loop produces — the exact per-scheme truth table, byte
/// for byte (these bytes ARE the checkpoint format):
///  * kNone / kEcc  — no checker; the hardened output is copy 0's.
///  * kParity       — the per-stage parity checker fires on every applied
///                    flip (single-bit upsets always have odd weight),
///                    struck or bubble alike.
///  * kResidue      — the mod-3 checker fires only when the corruption
///                    reaches the result significand of a valid output.
///  * kDuplicate    — compare-against-clean-copy: fires iff observables
///                    differ.
///  * kTmr          — the voter outvotes the single struck copy, so the
///                    hardened output never differs; disagreement shows up
///                    as a mismatch.
UnitTrial map_fast_trial(const rtl::UpsetTrial& t, fault::Scheme scheme,
                         fp::u64 clean_result, fp::u64 frac_mask) {
  UnitTrial u;
  u.corrupted = t.corrupted;
  switch (scheme) {
    case fault::Scheme::kNone:
    case fault::Scheme::kEcc:
      u.hardened_differs = t.corrupted;
      break;
    case fault::Scheme::kParity:
      u.hardened_differs = t.corrupted;
      u.mismatch = true;
      break;
    case fault::Scheme::kResidue:
      u.hardened_differs = t.corrupted;
      u.mismatch = t.struck && t.valid &&
                   ((t.result ^ clean_result) & frac_mask) != 0;
      break;
    case fault::Scheme::kDuplicate:
      u.hardened_differs = t.corrupted;
      u.mismatch = t.corrupted;
      break;
    case fault::Scheme::kTmr:
      u.mismatch = t.corrupted;
      break;
  }
  return u;
}

void fold_fault(fault::SpecHash& h, const fault::Fault& f) {
  h.i64(f.cycle)
      .i64(static_cast<long long>(f.site))
      .i64(f.index)
      .i64(f.lane)
      .i64(f.bit)
      .u64(f.mask)
      .u64(f.stuck)
      .i64(f.repair_cycle);
}

/// A campaign's live checkpoint: the skip set restored from the sidecar
/// plus the writer the remaining chunks append to. Inactive (no writer, no
/// skips) when the control has no checkpoint directory.
struct CheckpointSession {
  std::vector<char> skip;  ///< per-chunk; empty when nothing restored
  std::unique_ptr<fault::CheckpointWriter> writer;
  long restored = 0;
};

/// Open (and on resume, restore) the sidecar for spec `key`.
/// `restore_chunk(index, bytes)` decodes one stored chunk back into the
/// caller's slots and returns false to reject it (bad size). The sidecar
/// is rewritten via a temp file so a pre-existing torn tail can never
/// swallow this run's appends.
CheckpointSession open_checkpoint_session(
    const CampaignRunControl& ctl, std::uint64_t key, std::size_t count,
    std::size_t chunk, std::size_t nchunks,
    const std::function<bool(std::size_t, const std::vector<std::uint8_t>&)>&
        restore_chunk) {
  CheckpointSession s;
  if (ctl.checkpoint_dir.empty() || count == 0) return s;
  const std::string path = fault::checkpoint_path(ctl.checkpoint_dir, key);
  std::map<std::size_t, std::vector<std::uint8_t>> keep;
  if (ctl.resume) {
    const fault::CheckpointLoad load = fault::load_checkpoint(path);
    if (load.found) {
      if (load.spec_hash != key || load.count != count ||
          load.chunk != chunk) {
        throw std::runtime_error(
            "checkpoint " + path +
            " was written by a different campaign (spec/count/chunk "
            "mismatch); refusing to mix tallies");
      }
      s.skip.assign(nchunks, 0);
      for (const auto& [index, data] : load.chunks) {
        if (!restore_chunk(index, data)) continue;
        s.skip[index] = 1;
        ++s.restored;
        keep.emplace(index, data);
      }
    }
  }
  s.writer = fault::rewrite_checkpoint(path, key, count, chunk,
                                       ctl.fsync_interval, keep);
  return s;
}

}  // namespace

double proportion_half_width(long successes, long n) {
  if (n <= 0) return 0.0;
  // Agresti-Coull adjustment: the plain normal approximation collapses to
  // a zero half-width at p == 0 or 1, which would trip any convergence
  // threshold after one all-masked chunk. p~ = (s+2)/(n+4) never does.
  const double nt = static_cast<double>(n) + 4.0;
  const double p = (static_cast<double>(successes) + 2.0) / nt;
  return 1.96 * std::sqrt(p * (1.0 - p) / nt);
}

UnitSeuResult run_unit_campaign(units::UnitKind kind, fp::FpFormat fmt,
                                const units::UnitConfig& cfg,
                                const SeuCampaignConfig& camp) {
  return run_unit_campaign(kind, fmt, cfg, camp, CampaignRunControl{});
}

UnitSeuResult run_unit_campaign(units::UnitKind kind, fp::FpFormat fmt,
                                const units::UnitConfig& cfg,
                                const SeuCampaignConfig& camp,
                                const CampaignRunControl& control) {
  UnitSeuResult res;
  obs::Tracer& tracer = obs::Tracer::global();
  obs::Registry& reg = obs::Registry::global();
  auto campaign_span = tracer.span("unit_campaign", "campaign");

  units::FpUnit probe(kind, fmt, cfg);
  const int horizon = camp.vectors + probe.latency() + 2;
  const std::vector<units::UnitInput> workload =
      fault::campaign_workload(kind, fmt, camp.vectors, camp.seed);

  // Golden run: the clean pipeline over the identical stream.
  std::vector<std::optional<units::UnitOutput>> golden;
  golden.reserve(static_cast<std::size_t>(horizon));
  {
    auto golden_span = tracer.span("golden", "campaign");
    probe.reset();
    for (int t = 0; t < horizon; ++t) {
      probe.step(t < camp.vectors
                     ? std::optional<units::UnitInput>(
                           workload[static_cast<std::size_t>(t)])
                     : std::nullopt);
      golden.push_back(probe.output());
    }
  }
  // Occupancy of the clean pipeline over the campaign workload, recorded
  // on the caller's thread (thread-count-invariant by construction).
  obs::record_unit_occupancy(
      reg,
      std::string("pipeline.") + units::to_string(kind) + "." + fmt.name(),
      probe);

  auto draw_span = tracer.span("draw", "campaign");
  const fault::LatchProfile profile =
      fault::profile_unit_latches(probe, camp.vectors, camp.seed);
  res.occupied_bits = profile.total_bits();
  res.pipeline_ffs = probe.area().pipeline_ffs;

  // The whole fault list is drawn before any trial runs: the determinism
  // anchor. Every trial is a pure function of (fault, golden, workload).
  fault::CampaignSpec draw_spec;
  draw_spec.source = fault::CampaignSpec::Source::kRandom;
  draw_spec.profile = &profile;
  draw_spec.horizon = horizon;
  draw_spec.count = camp.faults;
  draw_spec.seed = camp.seed + 1;
  draw_spec.backend = camp.backend;
  const fault::FaultCampaign campaign = fault::FaultCampaign::make(draw_spec);
  const std::vector<fault::Fault>& faults = campaign.faults();
  std::vector<UnitTrial> trials(faults.size());
  draw_span.end();

  // A profile with no occupied sites yields a short (or empty) fault list:
  // the campaign silently runs fewer trials than requested. Account for
  // the shortfall the same way the matmul campaign accounts its dropped
  // redraws, so /metrics and BENCH records can surface it.
  if (static_cast<int>(faults.size()) < camp.faults) {
    const long dropped =
        static_cast<long>(camp.faults) - static_cast<long>(faults.size());
    reg.counter("campaign.unit.dropped_trials").add(dropped);
    std::fprintf(stderr,
                 "warning: unit campaign: dropped %ld of %d trials (no "
                 "occupied fault sites to draw)\n",
                 dropped, camp.faults);
  }

  // Backend selection: compile once per campaign, fork per worker. The
  // evaluator is only trusted where its guarantees hold (fast_path_covers);
  // everything else — and every kInterpreted request — runs the legacy
  // HardenedUnit loop. Tallies and checkpoint bytes are backend-invariant,
  // which is why the backend never folds into the spec hash below.
  const rtl::EvalBackend backend = rtl::resolve_backend(camp.backend);
  std::unique_ptr<rtl::Evaluator> evaluator;
  if (backend != rtl::EvalBackend::kInterpreted && !faults.empty()) {
    rtl::CompileContract contract;
    contract.input_lanes = {units::detail::kLaneInA, units::detail::kLaneInB,
                            units::detail::kLaneInCtl, units::detail::kLaneInC};
    contract.result_lane = units::detail::kLaneResult;
    contract.stimuli.reserve(workload.size());
    for (const units::UnitInput& in : workload) {
      contract.stimuli.push_back(units::FpUnit::pack(in));
    }
    evaluator =
        rtl::make_evaluator(backend, probe.pieces(), probe.plan(), contract);
    const rtl::CompileStats* cs = evaluator->compile_stats();
    if (cs == nullptr || !fast_path_covers(faults, *cs)) {
      evaluator.reset();
      reg.counter("campaign.unit.backend_fallback").inc();
    } else {
      evaluator->bind(contract.stimuli, horizon);
    }
  }

  // Static checkpoint grid: boundaries depend only on (count, chunk), so
  // a resume at a different thread count re-runs the same chunks.
  const std::size_t count = faults.size();
  const std::size_t chunk =
      control.chunk_trials > 0 ? control.chunk_trials : 16;
  const std::size_t nchunks = exec::grid_chunk_count(count, 1, chunk);

  // Campaign identity: everything the trial outcomes are a function of,
  // including the drawn fault list itself (the strongest possible key).
  fault::SpecHash spec;
  spec.str("unit_campaign v1");
  spec.str(units::to_string(kind)).str(fmt.name());
  spec.i64(probe.stages());
  spec.i64(static_cast<long long>(camp.scheme));
  spec.i64(camp.vectors).i64(camp.faults).u64(camp.seed).i64(horizon);
  spec.i64(static_cast<long long>(cfg.rounding))
      .i64(static_cast<long long>(cfg.objective))
      .i64(cfg.ieee_mode ? 1 : 0)
      .i64(cfg.use_embedded_multipliers ? 1 : 0);
  spec.i64(static_cast<long long>(chunk));
  spec.i64(static_cast<long long>(count));
  for (const fault::Fault& f : faults) fold_fault(spec, f);

  // Convergence tallies run over every accounted trial — restored chunks
  // included, so a resumed campaign's early stop sees the full sample.
  long done_trials = 0;
  long done_silent = 0;
  CheckpointSession ckpt = open_checkpoint_session(
      control, spec.value(), count, chunk, nchunks,
      [&](std::size_t index, const std::vector<std::uint8_t>& data) {
        const std::size_t begin = index * chunk;
        const std::size_t end = std::min(count, begin + chunk);
        if (data.size() != end - begin) return false;
        for (std::size_t i = begin; i < end; ++i) {
          trials[i] = decode_unit_trial(data[i - begin]);
          if (unit_trial_silent(trials[i], camp.scheme)) ++done_silent;
        }
        done_trials += static_cast<long>(end - begin);
        return true;
      });

  exec::CancelToken local_token;
  exec::CancelToken* cancel =
      control.cancel != nullptr ? control.cancel : &local_token;

  obs::ProgressReporter progress("unit campaign", static_cast<long>(count));
  // Restored trials count as already-done progress.
  for (long i = 0; i < done_trials; ++i) progress.tick();
  auto inject_span = tracer.span("inject", "campaign");
  const fault::HardenedUnit proto(kind, fmt, cfg, camp.scheme);

  long executed = 0;
  exec::GridOptions grid_opts;
  grid_opts.chunk = chunk;
  grid_opts.skip = ckpt.skip.empty() ? nullptr : &ckpt.skip;
  grid_opts.cancel = cancel;
  grid_opts.on_chunk_done = [&](std::size_t c, std::size_t begin,
                                std::size_t end) {
    const long nt = static_cast<long>(end - begin);
    executed += nt;
    done_trials += nt;
    for (std::size_t i = begin; i < end; ++i) {
      if (unit_trial_silent(trials[i], camp.scheme)) ++done_silent;
    }
    if (ckpt.writer != nullptr) {
      std::vector<std::uint8_t> data;
      data.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        data.push_back(encode_unit_trial(trials[i]));
      }
      ckpt.writer->append(c, data);
    }
    if (control.trial_budget > 0 && executed >= control.trial_budget) {
      cancel->request(exec::CancelToken::Reason::kTrialBudget);
    }
    if (control.stop_half_width > 0.0) {
      const double hw = control.rate.fit(
          res.pipeline_ffs, proportion_half_width(done_silent, done_trials));
      if (hw <= control.stop_half_width) {
        cancel->request(exec::CancelToken::Reason::kConverged);
      }
    }
  };

  const int eval_stages = evaluator != nullptr ? evaluator->stages() : 0;
  const fp::u64 frac_mask = fmt.frac_mask();
  const exec::GridResult grid = exec::parallel_for_grid(
      count, camp.threads,
      [&](int /*worker*/, std::size_t begin, std::size_t end) {
        if (evaluator != nullptr) {
          // Compiled / bitsliced fast path: one forked evaluator per
          // chunk, the whole chunk batched through trials().
          const std::unique_ptr<rtl::Evaluator> ev = evaluator->fork();
          const std::size_t nt = end - begin;
          std::vector<rtl::LatchUpset> upsets(nt);
          std::vector<rtl::UpsetTrial> verdicts(nt);
          for (std::size_t i = begin; i < end; ++i) {
            const fault::Fault& f = faults[i];
            upsets[i - begin] =
                rtl::LatchUpset{f.cycle, f.index, f.lane, f.bit};
          }
          ev->trials(upsets.data(), verdicts.data(), nt);
          for (std::size_t i = begin; i < end; ++i) {
            const rtl::UpsetTrial& v = verdicts[i - begin];
            const long vec = faults[i].cycle - faults[i].index;
            const fp::u64 clean_result =
                v.struck ? ev->clean_state(static_cast<int>(vec),
                                           eval_stages - 1)
                               .lane[units::detail::kLaneResult]
                         : 0;
            trials[i] =
                map_fast_trial(v, camp.scheme, clean_result, frac_mask);
            progress.tick();
          }
          return;
        }
        fault::HardenedUnit hardened = proto.clone();
        for (std::size_t i = begin; i < end; ++i) {
          hardened.reset();
          hardened.arm(fault::FaultCampaign::from_list({faults[i]}));
          UnitTrial& trial = trials[i];
          for (int t = 0; t < horizon; ++t) {
            const fault::HardenedUnit::Output out = hardened.step(
                t < camp.vectors ? std::optional<units::UnitInput>(
                                       workload[static_cast<std::size_t>(t)])
                                 : std::nullopt);
            const std::optional<units::UnitOutput>& g =
                golden[static_cast<std::size_t>(t)];
            trial.corrupted |= !same_output(out.raw, g);
            trial.hardened_differs |= !same_output(out.out, g);
            trial.mismatch |= out.mismatch;
          }
          hardened.disarm();
          progress.tick();
        }
      },
      grid_opts);
  inject_span.end();
  if (ckpt.writer != nullptr) ckpt.writer->flush();

  res.run.chunks_total = static_cast<long>(grid.chunks);
  res.run.chunks_completed = static_cast<long>(grid.completed);
  res.run.chunks_restored = ckpt.restored;
  res.run.trials_executed = executed;
  res.run.interrupted = !grid.complete();
  res.run.stop_reason = cancel->reason();

  // Ordered reduction: fault-list order, never worker-arrival order. Only
  // accounted (run or restored) chunks contribute — with every chunk done
  // this is exactly the legacy flat fold over the fault list.
  auto reduce_span = tracer.span("reduce", "campaign");
  for (std::size_t c = 0; c < grid.chunks; ++c) {
    if (grid.done[c] == 0) continue;
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    for (std::size_t i = begin; i < end; ++i) {
      const UnitTrial& trial = trials[i];
      ++res.injected;
      if (trial.corrupted) ++res.corrupted;
      if (camp.scheme == fault::Scheme::kTmr) {
        if (trial.hardened_differs) {
          ++res.silent;
        } else if (trial.corrupted) {
          ++res.corrected;
        } else {
          ++res.masked;
        }
      } else {
        if (trial.corrupted && !trial.mismatch) {
          ++res.silent;
        } else if (trial.mismatch) {
          ++res.detected;
        } else {
          ++res.masked;
        }
      }
    }
  }
  reduce_span.end();

  reg.counter("campaign.unit.trials").add(res.injected);
  reg.counter("campaign.unit.corrupted").add(res.corrupted);
  reg.counter("campaign.unit.masked").add(res.masked);
  reg.counter("campaign.unit.detected").add(res.detected);
  reg.counter("campaign.unit.corrected").add(res.corrected);
  reg.counter("campaign.unit.silent").add(res.silent);
  reg.counter("campaign.chunks.completed")
      .add(static_cast<long>(grid.completed));
  reg.counter("campaign.chunks.restored").add(ckpt.restored);
  if (res.run.interrupted) reg.counter("campaign.interrupted").inc();
  return res;
}

std::vector<SeuDepthPoint> seu_depth_sweep(units::UnitKind kind,
                                           fp::FpFormat fmt,
                                           const std::vector<int>& depths,
                                           const SeuCampaignConfig& camp,
                                           const SeuRateModel& rate) {
  return seu_depth_sweep(kind, fmt, depths, camp, rate, CampaignRunControl{})
      .points;
}

namespace {

// A finished depth point is the sweep's checkpoint unit: 8 little-endian
// 64-bit words (ints widened, doubles bit-cast), so restore is exact.
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
  }
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

std::vector<std::uint8_t> encode_depth_point(const SeuDepthPoint& p) {
  std::vector<std::uint8_t> out;
  out.reserve(64);
  put_u64(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(p.stages)));
  put_u64(out, std::bit_cast<std::uint64_t>(p.freq_mhz));
  put_u64(out, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(p.pipeline_ffs)));
  put_u64(out, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(p.occupied_bits)));
  put_u64(out, std::bit_cast<std::uint64_t>(p.avf));
  put_u64(out, std::bit_cast<std::uint64_t>(p.sdc_fraction));
  put_u64(out, std::bit_cast<std::uint64_t>(p.sdc_fit));
  put_u64(out, std::bit_cast<std::uint64_t>(p.tmr_area_x));
  return out;
}

SeuDepthPoint decode_depth_point(const std::vector<std::uint8_t>& data) {
  SeuDepthPoint p;
  p.stages = static_cast<int>(static_cast<std::int64_t>(get_u64(&data[0])));
  p.freq_mhz = std::bit_cast<double>(get_u64(&data[8]));
  p.pipeline_ffs =
      static_cast<int>(static_cast<std::int64_t>(get_u64(&data[16])));
  p.occupied_bits =
      static_cast<long>(static_cast<std::int64_t>(get_u64(&data[24])));
  p.avf = std::bit_cast<double>(get_u64(&data[32]));
  p.sdc_fraction = std::bit_cast<double>(get_u64(&data[40]));
  p.sdc_fit = std::bit_cast<double>(get_u64(&data[48]));
  p.tmr_area_x = std::bit_cast<double>(get_u64(&data[56]));
  return p;
}

}  // namespace

SeuSweepRun seu_depth_sweep(units::UnitKind kind, fp::FpFormat fmt,
                            const std::vector<int>& depths,
                            const SeuCampaignConfig& camp,
                            const SeuRateModel& rate,
                            const CampaignRunControl& control) {
  auto sweep_span =
      obs::Tracer::global().span("seu_depth_sweep", "campaign");
  SeuSweepRun out;
  out.points.assign(depths.size(), SeuDepthPoint{});
  const std::size_t count = depths.size();
  const std::size_t chunk = 1;  // one depth = one recoverable unit
  const std::size_t nchunks = count;

  fault::SpecHash spec;
  spec.str("seu_depth_sweep v1");
  spec.str(units::to_string(kind)).str(fmt.name());
  spec.i64(camp.vectors).i64(camp.faults).u64(camp.seed);
  spec.f64(rate.fit_per_mbit);
  spec.i64(static_cast<long long>(count));
  for (const int d : depths) spec.i64(d);

  CheckpointSession ckpt = open_checkpoint_session(
      control, spec.value(), count, chunk, nchunks,
      [&](std::size_t index, const std::vector<std::uint8_t>& data) {
        if (data.size() != 64) return false;
        out.points[index] = decode_depth_point(data);
        return true;
      });

  exec::CancelToken local_token;
  exec::CancelToken* cancel =
      control.cancel != nullptr ? control.cancel : &local_token;

  long executed = 0;  // inner-campaign trials, camp.faults per depth
  exec::GridOptions grid_opts;
  grid_opts.chunk = chunk;
  grid_opts.skip = ckpt.skip.empty() ? nullptr : &ckpt.skip;
  grid_opts.cancel = cancel;
  grid_opts.on_chunk_done = [&](std::size_t c, std::size_t /*begin*/,
                                std::size_t /*end*/) {
    executed += camp.faults;
    if (ckpt.writer != nullptr) {
      ckpt.writer->append(c, encode_depth_point(out.points[c]));
    }
    if (control.trial_budget > 0 && executed >= control.trial_budget) {
      cancel->request(exec::CancelToken::Reason::kTrialBudget);
    }
  };

  const exec::GridResult grid = exec::parallel_for_grid(
      count, camp.threads,
      [&](int /*worker*/, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          units::UnitConfig cfg;
          cfg.stages = depths[i];
          SeuCampaignConfig c = camp;
          c.scheme = fault::Scheme::kNone;
          c.threads = 1;  // the depth grid is the parallel axis here
          const UnitSeuResult r = run_unit_campaign(kind, fmt, cfg, c);
          const units::FpUnit unit(kind, fmt, cfg);
          SeuDepthPoint p;
          p.stages = unit.stages();
          p.freq_mhz = unit.timing().freq_mhz;
          p.pipeline_ffs = r.pipeline_ffs;
          p.occupied_bits = r.occupied_bits;
          p.avf = r.avf();
          p.sdc_fraction = r.sdc_fraction();
          p.sdc_fit = rate.fit(r.pipeline_ffs, r.avf());
          p.tmr_area_x =
              fault::hardening_cost(unit, fault::Scheme::kTmr).area_factor;
          out.points[i] = p;
        }
      },
      grid_opts);
  if (ckpt.writer != nullptr) ckpt.writer->flush();

  out.done = grid.done;
  out.run.chunks_total = static_cast<long>(grid.chunks);
  out.run.chunks_completed = static_cast<long>(grid.completed);
  out.run.chunks_restored = ckpt.restored;
  out.run.trials_executed = executed;
  out.run.interrupted = !grid.complete();
  out.run.stop_reason = cancel->reason();
  obs::Registry& reg = obs::Registry::global();
  reg.counter("campaign.chunks.completed")
      .add(static_cast<long>(grid.completed));
  reg.counter("campaign.chunks.restored").add(ckpt.restored);
  if (out.run.interrupted) reg.counter("campaign.interrupted").inc();
  return out;
}

ReliableSelection select_min_max_opt_reliable(const SweepResult& sweep,
                                              double max_fit,
                                              const SeuRateModel& rate,
                                              double avf_derate) {
  ReliableSelection sel;
  sel.unconstrained = select_min_max_opt(sweep);
  const DesignPoint* best = nullptr;
  const DesignPoint* least_vulnerable = nullptr;
  double least_fit = 0.0;
  for (const DesignPoint& p : sweep.points) {
    const double fit = rate.fit(p.pipeline_ffs, avf_derate);
    // Infeasible fallback: minimum modelled FIT — the quantity the cap is
    // expressed in (mirrors the CRAM overload below).
    if (least_vulnerable == nullptr || fit < least_fit) {
      least_vulnerable = &p;
      least_fit = fit;
    }
    if (fit <= max_fit &&
        (best == nullptr || p.freq_per_area > best->freq_per_area)) {
      best = &p;
    }
  }
  if (best != nullptr) {
    sel.opt = *best;
    sel.feasible = true;
  } else if (least_vulnerable != nullptr) {
    sel.opt = *least_vulnerable;
  }
  sel.fit_at_opt = rate.fit(sel.opt.pipeline_ffs, avf_derate);
  return sel;
}

ReliableSelection select_min_max_opt_reliable(const SweepResult& sweep,
                                              double max_fit,
                                              const SeuRateModel& rate,
                                              double avf_derate,
                                              const CramRateModel& cram) {
  ReliableSelection sel;
  sel.unconstrained = select_min_max_opt(sweep);
  const auto total_fit = [&](const DesignPoint& p) {
    return rate.fit(p.pipeline_ffs, avf_derate) + cram.fit(p.area);
  };
  const DesignPoint* best = nullptr;
  const DesignPoint* least_vulnerable = nullptr;
  double least_fit = 0.0;
  for (const DesignPoint& p : sweep.points) {
    const double fit = total_fit(p);
    if (least_vulnerable == nullptr || fit < least_fit) {
      least_vulnerable = &p;
      least_fit = fit;
    }
    if (fit <= max_fit &&
        (best == nullptr || p.freq_per_area > best->freq_per_area)) {
      best = &p;
    }
  }
  if (best != nullptr) {
    sel.opt = *best;
    sel.feasible = true;
  } else if (least_vulnerable != nullptr) {
    sel.opt = *least_vulnerable;
  }
  sel.cram_fit_at_opt = cram.fit(sel.opt.area);
  sel.fit_at_opt =
      rate.fit(sel.opt.pipeline_ffs, avf_derate) + sel.cram_fit_at_opt;
  return sel;
}

namespace {

// One kernel-campaign fault: which PE, which structure inside it.
struct PeFault {
  int pe = 0;
  enum Target {
    kMultLatch,
    kAddLatch,
    kAccumulator,
    kConfigMult,  ///< persistent config upset in the multiplier's logic
    kConfigAdd,   ///< persistent config upset in the adder's logic
  } target = kAccumulator;
  fault::Fault fault;
};

/// Per-trial verdict of one kernel-campaign fault.
struct KernelTrial {
  bool corrupted = false;
  bool ecc_detected = false;   // pe.ecc_detections() > 0 after the run
  bool ecc_corrected = false;  // pe.ecc_corrections() > 0 after the run
};

// A single-fault draw can come back empty (the sampled profile exposes no
// occupied site for that source); the legacy loop silently dropped the
// trial, so the campaign ran fewer than camp.faults faults and the
// accumulator/config fractions drifted from spec. Redraw with the next
// rng() seed until non-empty — bounded, and consuming extra draws only on
// the empty path, so a campaign whose draws all land keeps the legacy
// sequence bit for bit.
constexpr int kMaxRedraws = 16;

template <typename DrawFn>
fault::FaultCampaign redraw_until_nonempty(std::mt19937_64& rng,
                                           const DrawFn& draw) {
  fault::FaultCampaign c = draw(rng());
  for (int retry = 0; c.empty() && retry < kMaxRedraws; ++retry) {
    c = draw(rng());
  }
  return c;
}

}  // namespace

MatmulSeuResult run_matmul_campaign(const kernel::PeConfig& cfg,
                                    const MatmulSeuConfig& camp) {
  return run_matmul_campaign(cfg, camp, CampaignRunControl{});
}

namespace {

/// Kernel-trial sidecar byte: bit 0 corrupted, 1 ecc_detected,
/// 2 ecc_corrected.
std::uint8_t encode_kernel_trial(const KernelTrial& t) {
  return static_cast<std::uint8_t>((t.corrupted ? 1 : 0) |
                                   (t.ecc_detected ? 2 : 0) |
                                   (t.ecc_corrected ? 4 : 0));
}

KernelTrial decode_kernel_trial(std::uint8_t b) {
  KernelTrial t;
  t.corrupted = (b & 1) != 0;
  t.ecc_detected = (b & 2) != 0;
  t.ecc_corrected = (b & 4) != 0;
  return t;
}

}  // namespace

MatmulSeuResult run_matmul_campaign(const kernel::PeConfig& cfg,
                                    const MatmulSeuConfig& camp,
                                    const CampaignRunControl& control) {
  MatmulSeuResult res;
  obs::Tracer& tracer = obs::Tracer::global();
  obs::Registry& reg = obs::Registry::global();
  auto campaign_span = tracer.span("matmul_campaign", "campaign");
  const int n = camp.n;
  std::mt19937_64 rng(camp.seed);

  // Kernel trials re-run the whole stateful array; the unit evaluators
  // cannot stand in for that, so a compiled/bitsliced request downgrades
  // to the interpreted kernel loop (documented fallback, counted).
  if (rtl::resolve_backend(camp.backend) != rtl::EvalBackend::kInterpreted) {
    reg.counter("campaign.matmul.backend_fallback").inc();
  }

  kernel::PeConfig pe_cfg = cfg;
  pe_cfg.ecc_accumulators = camp.scheme == fault::Scheme::kEcc;

  // Deterministic operands with magnitudes near 1 so products stay finite.
  std::vector<double> av, bv;
  av.reserve(static_cast<std::size_t>(n) * n);
  bv.reserve(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n * n; ++i) {
    av.push_back((static_cast<double>(rng() % 2001) - 1000.0) / 499.0);
    bv.push_back((static_cast<double>(rng() % 2001) - 1000.0) / 499.0);
  }
  const kernel::Matrix a = kernel::matrix_from_doubles(av, n, cfg.fmt);
  const kernel::Matrix b = kernel::matrix_from_doubles(bv, n, cfg.fmt);

  // One shared golden run; every trial compares against it.
  auto golden_span = tracer.span("golden", "campaign");
  kernel::LinearArrayMatmul array(n, pe_cfg);
  const kernel::MatmulRun clean = array.run(a, b);
  const long horizon = clean.cycles;
  golden_span.end();
  // Per-PE MAC utilization + unit occupancy of the clean kernel run,
  // recorded before any trial perturbs the golden array's counters.
  obs::record_matmul_utilization(reg, "kernel.matmul", array);

  auto draw_span = tracer.span("draw", "campaign");

  // Latch-fault sample spaces for the PE's two units.
  const units::FpUnit mult_probe(units::UnitKind::kMultiplier, cfg.fmt,
                                 cfg.mult_config());
  const units::FpUnit add_probe(units::UnitKind::kAdder, cfg.fmt,
                                cfg.adder_config());
  const fault::LatchProfile mult_profile =
      fault::profile_unit_latches(mult_probe, 24, camp.seed + 2);
  const fault::LatchProfile add_profile =
      fault::profile_unit_latches(add_probe, 24, camp.seed + 3);

  // Pre-draw the complete fault list before any trial runs (the
  // determinism anchor for the parallel trial loop below).
  std::vector<PeFault> faults;
  faults.reserve(static_cast<std::size_t>(camp.faults));
  const int acc_count = static_cast<int>(
      camp.accumulator_fraction * static_cast<double>(camp.faults) + 0.5);
  for (int i = 0; i < camp.faults; ++i) {
    PeFault pf;
    pf.pe = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
    if (i < acc_count) {
      pf.target = PeFault::kAccumulator;
      fault::CampaignSpec acc_spec;
      acc_spec.source = fault::CampaignSpec::Source::kAccumulator;
      acc_spec.rows = n;
      acc_spec.word_bits = cfg.fmt.total_bits();
      acc_spec.horizon = horizon;
      acc_spec.count = 1;
      acc_spec.seed = rng();
      const fault::FaultCampaign acc = fault::FaultCampaign::make(acc_spec);
      pf.fault = acc.faults().front();
    } else {
      const bool mult = (rng() & 1) != 0;
      pf.target = mult ? PeFault::kMultLatch : PeFault::kAddLatch;
      const fault::FaultCampaign latch =
          redraw_until_nonempty(rng, [&](std::uint64_t seed) {
            fault::CampaignSpec latch_spec;
            latch_spec.source = fault::CampaignSpec::Source::kRandom;
            latch_spec.profile = mult ? &mult_profile : &add_profile;
            latch_spec.horizon = horizon;
            latch_spec.count = 1;
            latch_spec.seed = seed;
            return fault::FaultCampaign::make(latch_spec);
          });
      if (latch.empty()) {
        // Dropping the trial shrinks the campaign below camp.faults and
        // skews the site mix — make the silent path loud.
        ++res.draws_exhausted;
        reg.counter("campaign.matmul.dropped_trials").inc();
        std::fprintf(stderr,
                     "warning: matmul campaign: %s latch fault draw still "
                     "empty after %d redraws; dropping trial %d of %d\n",
                     mult ? "multiplier" : "adder", kMaxRedraws, i,
                     camp.faults);
        continue;
      }
      pf.fault = latch.faults().front();
    }
    faults.push_back(pf);
  }

  // Configuration upsets ride on top of the legacy draw sequence (appended
  // after it, so config_fraction == 0 reproduces the old campaign bit for
  // bit): a struck LUT/route in one unit's stage logic forces a stuck mask
  // until the next scrub pass.
  const int config_count = static_cast<int>(
      camp.config_fraction * static_cast<double>(camp.faults) + 0.5);
  for (int i = 0; i < config_count; ++i) {
    PeFault pf;
    pf.pe = static_cast<int>(rng() % static_cast<std::uint64_t>(n));
    const bool mult = (rng() & 1) != 0;
    pf.target = mult ? PeFault::kConfigMult : PeFault::kConfigAdd;
    const fault::FaultCampaign config =
        redraw_until_nonempty(rng, [&](std::uint64_t seed) {
          fault::CampaignSpec config_spec;
          config_spec.source = fault::CampaignSpec::Source::kCram;
          config_spec.profile = mult ? &mult_profile : &add_profile;
          config_spec.horizon = horizon;
          config_spec.count = 1;
          config_spec.seed = seed;
          config_spec.scrub_period_cycles = camp.scrub_period_cycles;
          return fault::FaultCampaign::make(config_spec);
        });
    if (config.empty()) {
      ++res.draws_exhausted;
      reg.counter("campaign.matmul.dropped_trials").inc();
      std::fprintf(stderr,
                   "warning: matmul campaign: %s config fault draw still "
                   "empty after %d redraws; dropping trial %d of %d\n",
                   mult ? "multiplier" : "adder", kMaxRedraws, i,
                   config_count);
      continue;
    }
    pf.fault = config.faults().front();
    faults.push_back(pf);
  }
  draw_span.end();

  // Static checkpoint grid over the pre-drawn fault list (see the unit
  // campaign above for the scheme; the key folds the drawn faults so two
  // campaigns with different draws can never share a sidecar).
  const std::size_t count = faults.size();
  const std::size_t chunk =
      control.chunk_trials > 0 ? control.chunk_trials : 16;
  const std::size_t nchunks = exec::grid_chunk_count(count, 1, chunk);
  std::vector<KernelTrial> trials(count);

  fault::SpecHash spec;
  spec.str("matmul_campaign v1");
  spec.i64(camp.n).str(cfg.fmt.name());
  spec.i64(camp.faults).u64(camp.seed);
  spec.f64(camp.accumulator_fraction).f64(camp.config_fraction);
  spec.i64(static_cast<long long>(camp.scheme));
  spec.i64(camp.scrub_period_cycles).i64(horizon);
  spec.i64(cfg.mult_config().stages).i64(cfg.adder_config().stages);
  spec.i64(static_cast<long long>(chunk));
  spec.i64(static_cast<long long>(count));
  for (const PeFault& pf : faults) {
    spec.i64(pf.pe).i64(static_cast<long long>(pf.target));
    fold_fault(spec, pf.fault);
  }

  long done_trials = 0;
  long done_silent = 0;
  CheckpointSession ckpt = open_checkpoint_session(
      control, spec.value(), count, chunk, nchunks,
      [&](std::size_t index, const std::vector<std::uint8_t>& data) {
        const std::size_t begin = index * chunk;
        const std::size_t end = std::min(count, begin + chunk);
        if (data.size() != end - begin) return false;
        for (std::size_t i = begin; i < end; ++i) {
          trials[i] = decode_kernel_trial(data[i - begin]);
          if (trials[i].corrupted && !trials[i].ecc_detected) ++done_silent;
        }
        done_trials += static_cast<long>(end - begin);
        return true;
      });

  exec::CancelToken local_token;
  exec::CancelToken* cancel =
      control.cancel != nullptr ? control.cancel : &local_token;

  // Trial loop: each worker re-runs the kernel on its own array replica
  // (run() clears every PE first, so a replica's trial is bit-identical to
  // the legacy reuse of one array). Verdicts land in per-fault slots.
  obs::ProgressReporter progress("matmul campaign",
                                 static_cast<long>(count));
  for (long i = 0; i < done_trials; ++i) progress.tick();
  auto inject_span = tracer.span("inject", "campaign");

  long executed = 0;
  exec::GridOptions grid_opts;
  grid_opts.chunk = chunk;
  grid_opts.skip = ckpt.skip.empty() ? nullptr : &ckpt.skip;
  grid_opts.cancel = cancel;
  grid_opts.on_chunk_done = [&](std::size_t c, std::size_t begin,
                                std::size_t end) {
    const long nt = static_cast<long>(end - begin);
    executed += nt;
    done_trials += nt;
    for (std::size_t i = begin; i < end; ++i) {
      if (trials[i].corrupted && !trials[i].ecc_detected) ++done_silent;
    }
    if (ckpt.writer != nullptr) {
      std::vector<std::uint8_t> data;
      data.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        data.push_back(encode_kernel_trial(trials[i]));
      }
      ckpt.writer->append(c, data);
    }
    if (control.trial_budget > 0 && executed >= control.trial_budget) {
      cancel->request(exec::CancelToken::Reason::kTrialBudget);
    }
    if (control.stop_half_width > 0.0 &&
        proportion_half_width(done_silent, done_trials) <=
            control.stop_half_width) {
      cancel->request(exec::CancelToken::Reason::kConverged);
    }
  };

  const exec::GridResult grid = exec::parallel_for_grid(
      count, camp.threads,
      [&](int worker, std::size_t begin, std::size_t end) {
        // Worker 0 reuses the golden array (exactly the legacy serial
        // loop); the others run on their own replicas.
        std::optional<kernel::LinearArrayMatmul> replica;
        if (worker != 0) replica.emplace(array.clone());
        kernel::LinearArrayMatmul& worker_array =
            worker == 0 ? array : *replica;
        for (std::size_t i = begin; i < end; ++i) {
          const PeFault& pf = faults[i];
          fault::FaultInjector injector({pf.fault});
          kernel::ProcessingElement& pe = worker_array.pe(pf.pe);
          switch (pf.target) {
            case PeFault::kMultLatch:
            case PeFault::kConfigMult:
              pe.multiplier().set_latch_observer(&injector);
              break;
            case PeFault::kAddLatch:
            case PeFault::kConfigAdd:
              pe.adder().set_latch_observer(&injector);
              break;
            case PeFault::kAccumulator:
              pe.set_storage_observer(&injector);
              break;
          }
          const kernel::MatmulRun faulty = worker_array.run(a, b);
          pe.multiplier().set_latch_observer(nullptr);
          pe.adder().set_latch_observer(nullptr);
          pe.set_storage_observer(nullptr);

          KernelTrial& trial = trials[i];
          trial.corrupted =
              faulty.c.bits != clean.c.bits || faulty.flags != clean.flags;
          trial.ecc_detected = pe.ecc_detections() > 0;
          trial.ecc_corrected = pe.ecc_corrections() > 0;
          progress.tick();
        }
      },
      grid_opts);
  inject_span.end();
  if (ckpt.writer != nullptr) ckpt.writer->flush();

  res.run.chunks_total = static_cast<long>(grid.chunks);
  res.run.chunks_completed = static_cast<long>(grid.completed);
  res.run.chunks_restored = ckpt.restored;
  res.run.trials_executed = executed;
  res.run.interrupted = !grid.complete();
  res.run.stop_reason = cancel->reason();

  // Ordered reduction over the pre-drawn fault list; only accounted (run
  // or restored) chunks contribute.
  auto reduce_span = tracer.span("reduce", "campaign");
  for (std::size_t c = 0; c < grid.chunks; ++c) {
    if (grid.done[c] == 0) continue;
    const std::size_t cbegin = c * chunk;
    const std::size_t cend = std::min(count, cbegin + chunk);
    for (std::size_t i = cbegin; i < cend; ++i) {
      const PeFault& pf = faults[i];
      const KernelTrial& trial = trials[i];
      ++res.injected;
      const bool acc_site = pf.target == PeFault::kAccumulator;
      const bool config_site = pf.target == PeFault::kConfigMult ||
                               pf.target == PeFault::kConfigAdd;
      if (acc_site) ++res.acc_injected;
      else if (config_site) ++res.config_injected;
      else ++res.latch_injected;

      if (trial.corrupted) {
        // ECC can still flag what it cannot fix (double errors).
        if (trial.ecc_detected) {
          ++res.detected;
        } else {
          ++res.silent;
          if (acc_site) ++res.acc_silent;
          else if (config_site) ++res.config_silent;
          else ++res.latch_silent;
        }
      } else if (trial.ecc_corrected) {
        ++res.corrected;  // the upset reached storage; SECDED repaired it
      } else {
        ++res.masked;
      }
    }
  }
  reduce_span.end();

  reg.counter("campaign.matmul.trials").add(res.injected);
  reg.counter("campaign.matmul.masked").add(res.masked);
  reg.counter("campaign.matmul.detected").add(res.detected);
  reg.counter("campaign.matmul.corrected").add(res.corrected);
  reg.counter("campaign.matmul.silent").add(res.silent);
  reg.counter("campaign.matmul.acc_injected").add(res.acc_injected);
  reg.counter("campaign.matmul.acc_silent").add(res.acc_silent);
  reg.counter("campaign.matmul.latch_injected").add(res.latch_injected);
  reg.counter("campaign.matmul.latch_silent").add(res.latch_silent);
  reg.counter("campaign.matmul.config_injected").add(res.config_injected);
  reg.counter("campaign.matmul.config_silent").add(res.config_silent);
  reg.counter("campaign.chunks.completed")
      .add(static_cast<long>(grid.completed));
  reg.counter("campaign.chunks.restored").add(ckpt.restored);
  if (res.run.interrupted) reg.counter("campaign.interrupted").inc();
  return res;
}

}  // namespace flopsim::analysis
