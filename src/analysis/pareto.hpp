// Selection of the paper's min / max / opt implementations and the
// frequency-area Pareto frontier.
#pragma once

#include "analysis/sweep.hpp"

namespace flopsim::analysis {

struct Selection {
  DesignPoint min;  ///< least pipelined (1 stage)
  DesignPoint max;  ///< most deeply pipelined
  DesignPoint opt;  ///< "the implementation reaches highest freq/area ratio"
};

Selection select_min_max_opt(const SweepResult& sweep);

/// The highest-frequency design, tie-broken by smallest area — what the
/// paper fields against the commercial/academic cores in Tables 3 and 4
/// (its cores clock higher; the custom-format vendors sometimes keep the
/// better MHz/slice).
DesignPoint select_fastest(const SweepResult& sweep);

/// Points not dominated in (frequency up, slices down), ordered by stages.
std::vector<DesignPoint> pareto_frontier(const SweepResult& sweep);

}  // namespace flopsim::analysis
