// SemOp: a declared semantic over-approximation of one piece's eval.
//
// Piece evals are opaque `std::function` blobs, so nothing can interpret
// them symbolically. A piece that wants the abstract-interpretation lint
// engine (src/lint/absint.*) to prove facts about it carries a short
// `sem` program alongside the eval: a straight-line list of SemOps over
// the same lanes, each a sound over-approximation of what the eval does
// to that lane. The ops do not have to reproduce the eval bit-for-bit —
// kHavoc with the right width is always a legal (if coarse) description —
// but they must CONTAIN it: every concrete lane value the eval can
// produce must lie inside the abstract value the ops yield. The lint
// engine enforces this empirically (every probe-observed value is checked
// against the abstract state; a violation is an error finding), so a
// wrong annotation is loud, not silently unsound.
//
// Width conventions: widths are effective hardware widths in the sense of
// lint::effective_width — unsigned bit count, or two's-complement width
// for sign-extended negatives (kHavocSigned).
#pragma once

#include <cstdint>
#include <vector>

#include "fp/bits.hpp"

namespace flopsim::rtl {

struct SemOp {
  enum class Kind : std::uint8_t {
    kNop,         ///< annotated as doing nothing (timing placeholder)
    kConst,       ///< dst = imm
    kCopy,        ///< dst = lane a
    kHavoc,       ///< dst = unknown value of at most imm unsigned bits
    kHavocSigned, ///< dst = unknown two's-complement value of imm bits
    kAnd,         ///< dst = a & (b >= 0 ? lane b : imm)
    kOr,          ///< dst = a | (b >= 0 ? lane b : imm)
    kXor,         ///< dst = a ^ (b >= 0 ? lane b : imm)
    kShlImm,      ///< dst = a << imm
    kShrImm,      ///< dst = a >> imm
    kShrJamImm,   ///< dst = shift_right_jam64(a, imm)
    kShlVar,      ///< dst = a << (lane b value, bounded by imm)
    kShrVar,      ///< dst = a >> (lane b, bounded by imm)
    kShrJamVar,   ///< dst = shift_right_jam64(a, lane b, bounded by imm)
    kAdd,         ///< dst = a + (b >= 0 ? lane b : imm2), physical width imm
    kSub,         ///< dst = a - (b >= 0 ? lane b : imm2), physical width imm
    kMul,         ///< dst = a * (b >= 0 ? lane b : imm2), truncated to imm bits
    kSelect,      ///< dst = cond-bit ? a : b (the mux join)
    kCmp,         ///< dst = (a REL b) in {0, 1}
    kRead,        ///< declares a read of lane a with no modeled effect
    kFlags,       ///< writes SignalSet::flags (reads lane a when a >= 0)
  };

  Kind kind = Kind::kNop;
  std::int8_t dst = -1;
  std::int8_t a = -1;
  std::int8_t b = -1;
  /// Lane guarding this op; -1 = unconditional. A guarded op whose
  /// condition the engine cannot decide joins its result with the old dst.
  std::int8_t cond = -1;
  std::uint8_t cond_bit = 0;
  bool cond_neg = false;  ///< execute when the condition bit is 0
  fp::u64 imm = 0;        ///< mask / shift distance / width, per kind
  fp::u64 imm2 = 0;       ///< constant operand for kAdd/kSub/kMul
};

using SemProgram = std::vector<SemOp>;

/// Concise builders — unit chain builders compose piece annotations from
/// these. All return by value; append with push_back or initializer lists.
namespace sem {

inline SemOp nop() { return SemOp{}; }

inline SemOp cst(int dst, fp::u64 value) {
  SemOp op;
  op.kind = SemOp::Kind::kConst;
  op.dst = static_cast<std::int8_t>(dst);
  op.imm = value;
  return op;
}

inline SemOp copy(int dst, int a) {
  SemOp op;
  op.kind = SemOp::Kind::kCopy;
  op.dst = static_cast<std::int8_t>(dst);
  op.a = static_cast<std::int8_t>(a);
  return op;
}

inline SemOp havoc(int dst, int width) {
  SemOp op;
  op.kind = SemOp::Kind::kHavoc;
  op.dst = static_cast<std::int8_t>(dst);
  op.imm = static_cast<fp::u64>(width);
  return op;
}

inline SemOp havocs(int dst, int width) {
  SemOp op;
  op.kind = SemOp::Kind::kHavocSigned;
  op.dst = static_cast<std::int8_t>(dst);
  op.imm = static_cast<fp::u64>(width);
  return op;
}

inline SemOp binop(SemOp::Kind k, int dst, int a, int b) {
  SemOp op;
  op.kind = k;
  op.dst = static_cast<std::int8_t>(dst);
  op.a = static_cast<std::int8_t>(a);
  op.b = static_cast<std::int8_t>(b);
  return op;
}

inline SemOp band(int dst, int a, fp::u64 mask) {
  SemOp op = binop(SemOp::Kind::kAnd, dst, a, -1);
  op.imm = mask;
  return op;
}

inline SemOp bor(int dst, int a, int b) {
  return binop(SemOp::Kind::kOr, dst, a, b);
}

inline SemOp bxor(int dst, int a, int b) {
  return binop(SemOp::Kind::kXor, dst, a, b);
}

inline SemOp shl(int dst, int a, int dist) {
  SemOp op = binop(SemOp::Kind::kShlImm, dst, a, -1);
  op.imm = static_cast<fp::u64>(dist);
  return op;
}

inline SemOp shr(int dst, int a, int dist) {
  SemOp op = binop(SemOp::Kind::kShrImm, dst, a, -1);
  op.imm = static_cast<fp::u64>(dist);
  return op;
}

inline SemOp shrjam(int dst, int a, int dist) {
  SemOp op = binop(SemOp::Kind::kShrJamImm, dst, a, -1);
  op.imm = static_cast<fp::u64>(dist);
  return op;
}

/// Variable-distance shifts: distance comes from lane `dist_lane`, with a
/// declared maximum `max_dist` (the barrel width the hardware builds).
inline SemOp shlv(int dst, int a, int dist_lane, int max_dist) {
  SemOp op = binop(SemOp::Kind::kShlVar, dst, a, dist_lane);
  op.imm = static_cast<fp::u64>(max_dist);
  return op;
}

inline SemOp shrv(int dst, int a, int dist_lane, int max_dist) {
  SemOp op = binop(SemOp::Kind::kShrVar, dst, a, dist_lane);
  op.imm = static_cast<fp::u64>(max_dist);
  return op;
}

inline SemOp shrjamv(int dst, int a, int dist_lane, int max_dist) {
  SemOp op = binop(SemOp::Kind::kShrJamVar, dst, a, dist_lane);
  op.imm = static_cast<fp::u64>(max_dist);
  return op;
}

/// dst = a + b through a `width`-bit physical adder. The result is
/// truncated to `width` bits; the engine reports carry-out reachability
/// (DL405) when the abstract operands can overflow it. Use width 64 for
/// a full-machine-word add with no truncation.
inline SemOp add(int dst, int a, int b, int width = 64) {
  SemOp op = binop(SemOp::Kind::kAdd, dst, a, b);
  op.imm = static_cast<fp::u64>(width);
  return op;
}

inline SemOp addi(int dst, int a, fp::u64 constant, int width = 64) {
  SemOp op = binop(SemOp::Kind::kAdd, dst, a, -1);
  op.imm = static_cast<fp::u64>(width);
  op.imm2 = constant;
  return op;
}

inline SemOp sub(int dst, int a, int b, int width = 64) {
  SemOp op = binop(SemOp::Kind::kSub, dst, a, b);
  op.imm = static_cast<fp::u64>(width);
  return op;
}

inline SemOp subi(int dst, int a, fp::u64 constant, int width = 64) {
  SemOp op = binop(SemOp::Kind::kSub, dst, a, -1);
  op.imm = static_cast<fp::u64>(width);
  op.imm2 = constant;
  return op;
}

/// dst = a * b truncated to `width` bits (the partial-product width the
/// hardware keeps).
inline SemOp mul(int dst, int a, int b, int width = 64) {
  SemOp op = binop(SemOp::Kind::kMul, dst, a, b);
  op.imm = static_cast<fp::u64>(width);
  return op;
}

/// dst = bit `bit` of lane `cond` ? lane a : lane b.
inline SemOp select(int dst, int cond, int bit, int a, int b) {
  SemOp op = binop(SemOp::Kind::kSelect, dst, a, b);
  op.cond = static_cast<std::int8_t>(cond);
  op.cond_bit = static_cast<std::uint8_t>(bit);
  return op;
}

inline SemOp cmp(int dst, int a, int b) {
  return binop(SemOp::Kind::kCmp, dst, a, b);
}

inline SemOp read(int lane) {
  SemOp op;
  op.kind = SemOp::Kind::kRead;
  op.a = static_cast<std::int8_t>(lane);
  return op;
}

inline SemOp flags(int read_lane = -1) {
  SemOp op;
  op.kind = SemOp::Kind::kFlags;
  op.a = static_cast<std::int8_t>(read_lane);
  return op;
}

/// Guard `op` on bit `bit` of lane `cond` (negated when `neg`): the op
/// only happens when the bit is set (cleared). An undecided condition
/// makes the engine join the op's result with the lane's prior value.
inline SemOp onif(SemOp op, int cond, int bit, bool neg = false) {
  op.cond = static_cast<std::int8_t>(cond);
  op.cond_bit = static_cast<std::uint8_t>(bit);
  op.cond_neg = neg;
  return op;
}

}  // namespace sem
}  // namespace flopsim::rtl
