// TraceRecorder: waveform capture for pipelined simulations.
//
// Snapshot the stage registers after each clock and export either a
// human-readable table or a minimal VCD file (loadable in GTKWave and
// friends) — the debugging workflow an RTL engineer expects from a
// simulator.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "rtl/simulator.hpp"

namespace flopsim::rtl {

class TraceRecorder {
 public:
  /// @param lanes the lane indices worth recording (defaults to all).
  explicit TraceRecorder(std::vector<int> lanes = {});

  /// Capture the simulator's stage registers for the current cycle.
  void capture(const PipelineSim& sim);

  long cycles() const { return static_cast<long>(frames_.size()); }

  /// Columnar text dump: one row per cycle, one column per (stage, lane).
  void dump_text(std::ostream& os) const;

  /// Minimal VCD: one 64-bit wire per (stage, lane) plus per-stage valid.
  void dump_vcd(std::ostream& os, const std::string& top = "flopsim") const;

  void clear() { frames_.clear(); }

 private:
  struct Frame {
    std::vector<SignalSet> latches;
  };
  std::vector<int> lanes_;
  std::vector<Frame> frames_;

  std::vector<int> effective_lanes() const;
};

}  // namespace flopsim::rtl
