#include "rtl/program.hpp"

#include <array>
#include <bit>

#include "lint/absint.hpp"
#include "lint/probe.hpp"

namespace flopsim::rtl {

void CompiledProgram::run_block(SignalSet* slots, const int* entry_stage,
                                std::uint64_t mask, bool use_full) const {
  const std::vector<Op>& ops = use_full ? full_ops_ : ops_;
  const std::vector<int>& begin = use_full ? full_begin_ : op_begin_;
  const int nstages = stages();
  for (int st = 0; st < nstages; ++st) {
    // The per-stage valid gate, sampled at the stage boundary exactly like
    // PipelineSim::step samples it once per stage.
    std::uint64_t active = 0;
    for (std::uint64_t w = mask; w != 0; w &= w - 1) {
      const int k = std::countr_zero(w);
      if (entry_stage[k] <= st && slots[k].valid) {
        active |= std::uint64_t{1} << k;
      }
    }
    if (active == 0) continue;
    for (int i = begin[static_cast<std::size_t>(st)];
         i < begin[static_cast<std::size_t>(st) + 1]; ++i) {
      const Op& op = ops[static_cast<std::size_t>(i)];
      if (op.eval != nullptr) {
        for (std::uint64_t w = active; w != 0; w &= w - 1) {
          (*op.eval)(slots[std::countr_zero(w)]);
        }
      } else {
        for (int j = op.store_begin; j < op.store_end; ++j) {
          const Store& wst = stores_[static_cast<std::size_t>(j)];
          for (std::uint64_t w = active; w != 0; w &= w - 1) {
            slots[std::countr_zero(w)].lane[static_cast<std::size_t>(wst.lane)] =
                wst.value;
          }
        }
      }
    }
  }
}

namespace {

/// Pieces the liveness pass must never drop: anything whose effect the
/// campaign observables (result lane, flags, DONE) or the probe itself
/// cannot fully account for.
bool must_keep(const lint::PieceAccess& pa) {
  return pa.writes_flags || pa.writes_valid || pa.nondeterministic ||
         !pa.out_of_range.empty();
}

/// Equality on the campaign observables: the DONE bit, the result lane,
/// and the carried flags. Scratch lanes are allowed to differ — a pruned
/// dead write leaves its lane stale by design, and the bind-time flip
/// battery (rtl/evaluator.*) judges the pruned program by this same
/// yardstick.
bool observably_equal(const SignalSet& a, const SignalSet& b,
                      int result_lane) {
  if (a.valid != b.valid) return false;
  if (!a.valid) return true;
  const auto rl = static_cast<std::size_t>(result_lane);
  return a.lane[rl] == b.lane[rl] && a.flags == b.flags;
}

}  // namespace

CompiledProgram compile_program(const PieceChain& chain,
                                const PipelinePlan& plan,
                                const CompileContract& contract,
                                const CompileOptions& opts) {
  CompiledProgram prog;
  const std::size_t n = chain.size();
  prog.stats_.pieces = static_cast<int>(n);
  prog.disposition_.assign(n, CompiledProgram::Disposition::kKept);

  // The lint probe is the IR: observational per-piece read/write sets.
  lint::ChainContract lc;
  lc.name = "compile_program";
  lc.input_lanes = contract.input_lanes;
  lc.result_lane = contract.result_lane;
  lc.stimuli = contract.stimuli;
  lint::Options lo;
  lo.seed = opts.probe_seed;
  const lint::ChainAccess access = lint::infer_chain_access(chain, lc, lo);

  for (const lint::PieceAccess& pa : access.piece) {
    prog.stats_.alters_flags = prog.stats_.alters_flags || pa.writes_flags;
    prog.stats_.alters_valid = prog.stats_.alters_valid || pa.writes_valid;
    prog.stats_.nondeterministic =
        prog.stats_.nondeterministic || pa.nondeterministic;
  }

  // Backward liveness from the result lane. A conservative pass: a piece
  // that touches flags/DONE, misbehaves under the probe, or indexes out
  // of range is kept with a read-everything assumption.
  if (opts.prune_dead_pieces && !contract.stimuli.empty()) {
    std::array<bool, kMaxSignals> live{};
    if (contract.result_lane >= 0 && contract.result_lane < kMaxSignals) {
      live[static_cast<std::size_t>(contract.result_lane)] = true;
    }
    for (std::size_t rp = n; rp-- > 0;) {
      const lint::PieceAccess& pa = access.piece[rp];
      if (must_keep(pa)) {
        live.fill(true);  // unknown reads: everything upstream is live
        continue;
      }
      if (!pa.touched) {
        prog.disposition_[rp] = CompiledProgram::Disposition::kPruned;
        continue;
      }
      bool writes_live = false;
      for (int l = 0; l < kMaxSignals; ++l) {
        const auto idx = static_cast<std::size_t>(l);
        if (live[idx] && pa.write_any[idx]) writes_live = true;
      }
      if (!writes_live) {
        prog.disposition_[rp] = CompiledProgram::Disposition::kPruned;
        continue;
      }
      // Only unconditional writes kill liveness; reads extend it.
      for (int l = 0; l < kMaxSignals; ++l) {
        const auto idx = static_cast<std::size_t>(l);
        if (pa.write_always[idx]) live[idx] = false;
      }
      for (int l = 0; l < kMaxSignals; ++l) {
        const auto idx = static_cast<std::size_t>(l);
        if (pa.read[idx]) live[idx] = true;
      }
    }
  }

  // Constant folding: a kept, deterministic, read-free piece whose writes
  // are unconditional becomes a store table. Candidate writes are
  // validated on the real (unpoisoned) stimulus states — every changed
  // lane must be in the write_always set and hold the same value across
  // all stimuli, or the candidate is demoted back to a call.
  std::vector<std::vector<CompiledProgram::Store>> folds(n);
  if (opts.fold_constants && !contract.stimuli.empty()) {
    std::vector<char> candidate(n, 0);
    for (std::size_t p = 0; p < n; ++p) {
      const lint::PieceAccess& pa = access.piece[p];
      if (prog.disposition_[p] != CompiledProgram::Disposition::kKept) {
        continue;
      }
      if (must_keep(pa) || !pa.touched) continue;
      bool reads_any = false;
      bool conditional_write = false;
      for (int l = 0; l < kMaxSignals; ++l) {
        const auto idx = static_cast<std::size_t>(l);
        reads_any = reads_any || pa.read[idx];
        if (pa.write_any[idx] != pa.write_always[idx]) {
          conditional_write = true;
        }
      }
      candidate[p] = !reads_any && !conditional_write ? 1 : 0;
    }
    for (std::size_t v = 0; v < contract.stimuli.size(); ++v) {
      SignalSet state = contract.stimuli[v];
      for (std::size_t p = 0; p < n; ++p) {
        const SignalSet pre = state;
        chain[p].eval(state);
        if (candidate[p] == 0) continue;
        const lint::PieceAccess& pa = access.piece[p];
        std::vector<CompiledProgram::Store> stores;
        bool ok = state.valid == pre.valid && state.flags == pre.flags;
        for (int l = 0; ok && l < kMaxSignals; ++l) {
          const auto idx = static_cast<std::size_t>(l);
          const bool changed = state.lane[idx] != pre.lane[idx];
          if (changed && !pa.write_always[idx]) ok = false;
          if (pa.write_always[idx]) {
            stores.push_back(
                CompiledProgram::Store{l, state.lane[idx]});
          }
        }
        if (!ok || stores.empty()) {
          candidate[p] = 0;
          folds[p].clear();
          continue;
        }
        if (v == 0) {
          folds[p] = std::move(stores);
        } else if (folds[p].size() != stores.size()) {
          candidate[p] = 0;
          folds[p].clear();
        } else {
          for (std::size_t k = 0; k < stores.size(); ++k) {
            if (stores[k].lane != folds[p][k].lane ||
                stores[k].value != folds[p][k].value) {
              candidate[p] = 0;
              folds[p].clear();
              break;
            }
          }
        }
      }
    }
    for (std::size_t p = 0; p < n; ++p) {
      if (candidate[p] != 0 && !folds[p].empty()) {
        prog.disposition_[p] = CompiledProgram::Disposition::kFolded;
      }
    }
  }

  // Absint folding: the observational pass above only folds read-free
  // pieces; the abstract-interpretation engine proves constness through
  // dataflow (a piece reading a lane that is itself constant). Same
  // validation story — the clean-path self-check below rejects a wrong
  // fold wholesale.
  if (opts.fold_constants && opts.absint_fold && !contract.stimuli.empty()) {
    const lint::ChainAbsint absint = lint::analyze_chain(chain, lc, lo);
    for (std::size_t p = 0; absint.annotated && p < n; ++p) {
      if (prog.disposition_[p] != CompiledProgram::Disposition::kKept ||
          !absint.piece_constant[p] || must_keep(access.piece[p])) {
        continue;
      }
      std::array<bool, kMaxSignals> writes{};
      for (const SemOp& op : chain[p].sem) {
        if (op.kind == SemOp::Kind::kNop || op.kind == SemOp::Kind::kRead ||
            op.kind == SemOp::Kind::kFlags || op.dst < 0 ||
            op.dst >= kMaxSignals) {
          continue;
        }
        writes[static_cast<std::size_t>(op.dst)] = true;
      }
      std::vector<CompiledProgram::Store> stores;
      for (int l = 0; l < kMaxSignals; ++l) {
        if (!writes[static_cast<std::size_t>(l)]) continue;
        stores.push_back(CompiledProgram::Store{
            l, absint.piece_out[p].lane[static_cast<std::size_t>(l)]
                   .constant_value()});
      }
      if (!stores.empty()) {
        folds[p] = std::move(stores);
        prog.disposition_[p] = CompiledProgram::Disposition::kFolded;
      }
    }
  }

  // Emit the op arrays. Stage boundaries translate the plan's piece
  // indices into op indices once, so run() never consults the plan.
  const int stages = plan.stages();
  const auto stage_of = [&](std::size_t piece) {
    int st = 0;
    while (st + 1 < stages &&
           static_cast<int>(piece) >=
               plan.stage_begin[static_cast<std::size_t>(st) + 1]) {
      ++st;
    }
    return st;
  };
  prog.op_begin_.assign(static_cast<std::size_t>(stages) + 1, 0);
  prog.full_begin_.assign(static_cast<std::size_t>(stages) + 1, 0);
  const auto emit = [&](bool optimized) {
    std::vector<CompiledProgram::Op>& ops =
        optimized ? prog.ops_ : prog.full_ops_;
    std::vector<int>& begin = optimized ? prog.op_begin_ : prog.full_begin_;
    ops.clear();
    int st = 0;
    begin[0] = 0;
    for (std::size_t p = 0; p < n; ++p) {
      const int ps = stage_of(p);
      while (st < ps) begin[static_cast<std::size_t>(++st)] = static_cast<int>(ops.size());
      CompiledProgram::Op op;
      if (optimized) {
        switch (prog.disposition_[p]) {
          case CompiledProgram::Disposition::kPruned:
            continue;
          case CompiledProgram::Disposition::kFolded:
            op.store_begin = static_cast<int>(prog.stores_.size());
            for (const CompiledProgram::Store& w : folds[p]) {
              prog.stores_.push_back(w);
            }
            op.store_end = static_cast<int>(prog.stores_.size());
            break;
          case CompiledProgram::Disposition::kKept:
            op.eval = &chain[p].eval;
            break;
        }
      } else {
        op.eval = &chain[p].eval;
      }
      ops.push_back(op);
    }
    while (st + 1 < static_cast<int>(begin.size())) {
      begin[static_cast<std::size_t>(++st)] = static_cast<int>(ops.size());
    }
  };
  emit(/*optimized=*/false);
  emit(/*optimized=*/true);

  // Clean-path self-check: the optimized program must reproduce the full
  // one on every stimulus. Observational inference can miss a
  // conditional read; this is where such a miss surfaces — and pruning
  // is then abandoned rather than shipped.
  for (const SignalSet& stim : contract.stimuli) {
    SignalSet full = stim;
    SignalSet fast = stim;
    prog.run_full(full, 0, stages);
    prog.run(fast, 0, stages);
    if (!observably_equal(full, fast, contract.result_lane)) {
      prog.stats_.self_check_failed = true;
      break;
    }
  }
  if (prog.stats_.self_check_failed) {
    prog.disposition_.assign(n, CompiledProgram::Disposition::kKept);
    prog.stores_.clear();
    emit(/*optimized=*/true);  // no fold/prune dispositions left: == full
  }

  for (const CompiledProgram::Disposition d : prog.disposition_) {
    switch (d) {
      case CompiledProgram::Disposition::kKept: ++prog.stats_.kept; break;
      case CompiledProgram::Disposition::kFolded: ++prog.stats_.folded; break;
      case CompiledProgram::Disposition::kPruned: ++prog.stats_.pruned; break;
    }
  }
  return prog;
}

}  // namespace flopsim::rtl
