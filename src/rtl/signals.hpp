// SignalSet: the bundle of values crossing a pipeline-stage boundary.
//
// The structural FP units are chains of combinational "pieces" (see
// piece.hpp). Between any two pieces a pipeline register may be inserted;
// whatever the downstream pieces still need must then be latched. SignalSet
// is that latch content: a fixed array of 64-bit lanes (each unit assigns
// its own meaning per lane), a valid bit (the paper's DONE signal shifts
// through these), and the exception flags the paper carries forward
// stage-by-stage.
#pragma once

#include <array>
#include <cstdint>

#include "fp/bits.hpp"

namespace flopsim::rtl {

inline constexpr int kMaxSignals = 20;

struct SignalSet {
  std::array<fp::u64, kMaxSignals> lane{};
  bool valid = false;
  std::uint8_t flags = 0;  ///< fp::Flags bits, carried forward per stage

  fp::u64& operator[](int i) { return lane[static_cast<std::size_t>(i)]; }
  const fp::u64& operator[](int i) const {
    return lane[static_cast<std::size_t>(i)];
  }
};

}  // namespace flopsim::rtl
