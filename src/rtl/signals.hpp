// SignalSet: the bundle of values crossing a pipeline-stage boundary.
//
// The structural FP units are chains of combinational "pieces" (see
// piece.hpp). Between any two pieces a pipeline register may be inserted;
// whatever the downstream pieces still need must then be latched. SignalSet
// is that latch content: a fixed array of 64-bit lanes (each unit assigns
// its own meaning per lane), a valid bit (the paper's DONE signal shifts
// through these), and the exception flags the paper carries forward
// stage-by-stage.
#pragma once

#include <array>
#include <cstdint>

#include "fp/bits.hpp"

namespace flopsim::rtl {

inline constexpr int kMaxSignals = 20;

/// Observer of per-lane accesses, used by the lint engine (src/lint/) to
/// infer each piece's read/write sets. Attach with ScopedLaneListener; the
/// hook is thread-local, so an attached listener never observes (or slows)
/// simulations on other threads, and the detached fast path is one
/// predictable branch per access.
class LaneAccessListener {
 public:
  virtual ~LaneAccessListener() = default;
  /// `lane` is the raw index (possibly out of [0, kMaxSignals) — the
  /// listener is the bounds check); `mutable_access` distinguishes the
  /// non-const operator[] (read or write) from the const one (read).
  virtual void on_access(int lane, bool mutable_access) = 0;
};

namespace detail {
inline thread_local LaneAccessListener* lane_listener = nullptr;
/// Safe landing slot for out-of-range accesses while a listener is
/// attached: the access is reported instead of indexing past the array.
inline thread_local fp::u64 lane_scratch = 0;
}  // namespace detail

/// RAII attach/restore of the calling thread's lane listener.
class ScopedLaneListener {
 public:
  explicit ScopedLaneListener(LaneAccessListener* listener)
      : prev_(detail::lane_listener) {
    detail::lane_listener = listener;
  }
  ~ScopedLaneListener() { detail::lane_listener = prev_; }
  ScopedLaneListener(const ScopedLaneListener&) = delete;
  ScopedLaneListener& operator=(const ScopedLaneListener&) = delete;

 private:
  LaneAccessListener* prev_;
};

struct SignalSet {
  std::array<fp::u64, kMaxSignals> lane{};
  bool valid = false;
  std::uint8_t flags = 0;  ///< fp::Flags bits, carried forward per stage

  fp::u64& operator[](int i) {
    if (detail::lane_listener != nullptr) {
      detail::lane_listener->on_access(i, /*mutable_access=*/true);
      if (i < 0 || i >= kMaxSignals) return detail::lane_scratch;
    }
    return lane[static_cast<std::size_t>(i)];
  }
  const fp::u64& operator[](int i) const {
    if (detail::lane_listener != nullptr) {
      detail::lane_listener->on_access(i, /*mutable_access=*/false);
      if (i < 0 || i >= kMaxSignals) return detail::lane_scratch;
    }
    return lane[static_cast<std::size_t>(i)];
  }
};

}  // namespace flopsim::rtl
