// Piece: one atomic combinational block of a structural unit.
//
// Pieces are the granularity at which the paper inserts pipeline registers:
// "a pipeline stage can be inserted between the comparator and multiplexer",
// "three muxes in serial can be considered as a stage", "the priority
// encoder has to be broken into two smaller priority encoders and a 3-bit
// adder", etc. A unit is an ordered chain of pieces; the pipeline planner
// (pipeline.hpp) chooses which inter-piece boundaries become registers.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "device/resources.hpp"
#include "rtl/semops.hpp"
#include "rtl/signals.hpp"

namespace flopsim::rtl {

struct Piece {
  std::string name;   ///< e.g. "align_l2"
  std::string group;  ///< owning subunit, e.g. "shifter" — used in reports
  double delay_ns = 0.0;
  /// Contribution when this piece shares a stage with its same-group
  /// predecessor (e.g. a carry chain continuing across chunk boundaries
  /// pays no fresh LUT/net base). Negative = no discount.
  double delay_chained_ns = -1.0;
  device::Resources area;
  /// Total width (bits) of live signals if a register is placed after this
  /// piece — the FF cost of cutting here.
  int live_bits = 0;
  /// Whether a register may legally be inserted after this piece. The final
  /// piece's boundary is the always-present output register.
  bool cut_after = true;
  std::function<void(SignalSet&)> eval;
  /// Declared semantic over-approximation of eval for the abstract-
  /// interpretation lint engine (see rtl/semops.hpp). Empty = unannotated:
  /// the engine skips chains with any unannotated piece. A piece whose
  /// eval does nothing annotates as {sem::nop()}.
  SemProgram sem;
};

using PieceChain = std::vector<Piece>;

/// Run the whole chain combinationally (the zero-register reference).
void evaluate_chain(const PieceChain& chain, SignalSet& s);

/// Sum of piece areas (logic only, no pipeline registers).
device::Resources chain_logic_area(const PieceChain& chain);

}  // namespace flopsim::rtl
