#include "rtl/simulator.hpp"

#include <stdexcept>

namespace flopsim::rtl {

PipelineSim::PipelineSim(const PieceChain* chain, PipelinePlan plan)
    : chain_(chain), plan_(std::move(plan)) {
  if (chain_ == nullptr || chain_->empty() || plan_.stages() < 1) {
    throw std::invalid_argument("PipelineSim: empty chain or plan");
  }
  latch_.resize(static_cast<std::size_t>(plan_.stages()));
  valid_cycles_.assign(static_cast<std::size_t>(plan_.stages()), 0);
}

void PipelineSim::step(const std::optional<SignalSet>& input) {
  // Evaluate stages back-to-front so each stage consumes the upstream
  // latch's pre-edge value — i.e. true synchronous behaviour.
  for (int s = plan_.stages() - 1; s >= 0; --s) {
    SignalSet work;
    if (s == 0) {
      work = input.value_or(SignalSet{});
    } else {
      work = latch_[s - 1];
    }
    if (work.valid) {
      for (int i = plan_.stage_begin[s]; i < plan_.stage_begin[s + 1]; ++i) {
        (*chain_)[i].eval(work);
      }
    }
    latch_[s] = work;
    if (observer_ != nullptr) observer_->on_latch(cycles_, s, latch_[s]);
    if (latch_[s].valid) ++valid_cycles_[static_cast<std::size_t>(s)];
  }
  ++cycles_;
}

void PipelineSim::reset() {
  for (SignalSet& l : latch_) l = SignalSet{};
  valid_cycles_.assign(latch_.size(), 0);
  cycles_ = 0;
}

}  // namespace flopsim::rtl
