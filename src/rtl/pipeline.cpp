#include "rtl/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace flopsim::rtl {

void evaluate_chain(const PieceChain& chain, SignalSet& s) {
  for (const Piece& p : chain) p.eval(s);
}

device::Resources chain_logic_area(const PieceChain& chain) {
  device::Resources r;
  for (const Piece& p : chain) r += p.area;
  return r;
}

int max_stages(const PieceChain& chain) {
  int cuts = 0;
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    if (chain[i].cut_after) ++cuts;
  }
  return cuts + 1;
}

PipelinePlan plan_pipeline(const PieceChain& chain, int stages) {
  const int n = static_cast<int>(chain.size());
  if (n == 0) throw std::invalid_argument("plan_pipeline: empty chain");
  stages = std::clamp(stages, 1, max_stages(chain));

  // Legal boundaries: boundary b (1..n-1) sits after piece b-1. Boundary 0
  // and n are the chain ends.
  std::vector<int> boundaries{0};
  for (int i = 0; i + 1 < n; ++i) {
    if (chain[i].cut_after) boundaries.push_back(i + 1);
  }
  boundaries.push_back(n);
  const int nb = static_cast<int>(boundaries.size());

  auto seg = [&](int bi, int bj) {  // delay of pieces between boundaries
    return segment_delay(chain, boundaries[bi], boundaries[bj]);
  };

  // dp[k][j]: min possible max-stage-delay splitting boundaries[0..j] into k
  // stages; choice[k][j]: the boundary index of the last cut.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(
      stages + 1, std::vector<double>(nb, kInf));
  std::vector<std::vector<int>> choice(
      stages + 1, std::vector<int>(nb, -1));
  for (int j = 1; j < nb; ++j) dp[1][j] = seg(0, j);
  for (int k = 2; k <= stages; ++k) {
    for (int j = k; j < nb; ++j) {
      for (int m = k - 1; m < j; ++m) {
        const double cand = std::max(dp[k - 1][m], seg(m, j));
        if (cand < dp[k][j]) {
          dp[k][j] = cand;
          choice[k][j] = m;
        }
      }
    }
  }

  PipelinePlan plan;
  std::vector<int> rev;
  int j = nb - 1;
  for (int k = stages; k >= 2; --k) {
    j = choice[k][j];
    rev.push_back(boundaries[j]);
  }
  plan.stage_begin.push_back(0);
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    plan.stage_begin.push_back(*it);
  }
  plan.stage_begin.push_back(n);
  return plan;
}

double segment_delay(const PieceChain& chain, int begin, int end) {
  double d = 0.0;
  for (int i = begin; i < end; ++i) {
    const Piece& p = chain[i];
    const bool chained = i > begin && p.delay_chained_ns >= 0 &&
                         chain[i - 1].group == p.group;
    d += chained ? p.delay_chained_ns : p.delay_ns;
  }
  return d;
}

Timing evaluate_timing(const PieceChain& chain, const PipelinePlan& plan,
                       const device::TechModel& tech) {
  Timing t;
  for (int s = 0; s < plan.stages(); ++s) {
    const double d =
        segment_delay(chain, plan.stage_begin[s], plan.stage_begin[s + 1]);
    if (d > t.critical_ns) {
      t.critical_ns = d;
      t.critical_stage = s;
    }
  }
  t.period_ns = t.critical_ns + tech.register_overhead_ns();
  t.freq_mhz = 1000.0 / t.period_ns;
  return t;
}

AreaBreakdown evaluate_area(const PieceChain& chain, const PipelinePlan& plan,
                            const device::TechModel& tech,
                            device::Objective objective) {
  AreaBreakdown a;
  a.logic = chain_logic_area(chain);

  // Register bits: one latch of the live width at each internal cut, plus
  // the always-present output register after the final piece, plus the
  // 1-bit DONE/valid shift register per stage.
  int ffs = 0;
  for (int s = 1; s < plan.stages(); ++s) {
    ffs += chain[plan.stage_begin[s] - 1].live_bits;
  }
  ffs += chain.back().live_bits;  // output register
  ffs += plan.stages();           // DONE shift register
  a.pipeline_ffs = ffs;

  // Absorb FFs into the flip-flops co-located with the logic slices.
  const int capacity = static_cast<int>(
      a.logic.slices * tech.ffs_per_slice() * tech.ff_absorption());
  a.absorbed_ffs = std::min(ffs, capacity);
  const int spill = ffs - a.absorbed_ffs;
  const int spill_slices =
      (spill + tech.ffs_per_slice() - 1) / tech.ffs_per_slice();

  a.total = a.logic;
  a.total.slices = static_cast<int>(
      std::ceil((a.logic.slices + spill_slices) * tech.par_area_factor(objective)));
  a.total.ffs = ffs;
  return a;
}

}  // namespace flopsim::rtl
