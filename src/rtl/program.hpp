// Compiled evaluation programs for piece chains.
//
// The interpreted simulator walks a PieceChain as a vector of named,
// costed std::function pieces — ideal for the timing/area analyses, but
// every Monte-Carlo trial pays the full tour: name lookups aside, each
// trial re-evaluates every piece of every stage at every cycle of the
// horizon. A CompiledProgram is the once-per-(unit kind, precision,
// depth) answer: the chain and plan are "compiled" into a flat op array
// (no virtual dispatch, one indirect call per surviving piece, lane
// offsets and stage boundaries resolved once) that campaign evaluators
// replay millions of times.
//
// Compilation reuses the lint engine's lane def-use inference
// (src/lint/probe.*) as its IR — the same observational read/write sets
// the DL1xx rules run on drive two optimizations here:
//
//   * dead-piece pruning: a backward liveness pass from the result lane
//     drops pieces whose writes can never reach the result, the flag
//     byte, or the DONE bit;
//   * constant folding: a deterministic piece that reads nothing and
//     writes the same values on every stimulus becomes a table of lane
//     stores instead of a call.
//
// The inference is observational, so compile() self-checks: the pruned
// program must reproduce the full program on every stimulus, or pruning
// is abandoned (stats().self_check_failed) and the program falls back to
// the faithful full op list. Evaluators add a second, flip-battery check
// at bind time (rtl/evaluator.*) before trusting the pruned suffix on
// faulty states.
//
// Borrow semantics: like PipelineSim, a CompiledProgram references the
// chain's eval functors — the chain must outlive the program.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rtl/pipeline.hpp"
#include "rtl/signals.hpp"

namespace flopsim::rtl {

/// What the chain promises the compiler: which lanes arrive initialized,
/// which lane carries the result, and the stimulus bundles (packed
/// inputs, valid set) that drive def-use inference and the self-check.
struct CompileContract {
  std::vector<int> input_lanes;
  int result_lane = 0;
  std::vector<SignalSet> stimuli;
};

struct CompileOptions {
  bool prune_dead_pieces = true;
  bool fold_constants = true;
  /// Also fold pieces the abstract-interpretation engine proves constant
  /// through dataflow (lint/absint.*) — catches constants the purely
  /// observational read-free test misses (e.g. a piece reading a lane
  /// that is itself proven constant). Requires a fully sem-annotated
  /// chain; validated by the same clean-path self-check as every fold.
  bool absint_fold = true;
  std::uint64_t probe_seed = 1;  ///< poison seed for the def-use probe
};

struct CompileStats {
  int pieces = 0;  ///< chain length
  int kept = 0;    ///< pieces surviving as call ops
  int folded = 0;  ///< pieces replaced by constant stores
  int pruned = 0;  ///< pieces dropped as dead
  /// The pruned program disagreed with the full one on a stimulus;
  /// pruning and folding were abandoned (the program still compiled).
  bool self_check_failed = false;
  /// Some piece writes SignalSet::flags / the DONE bit / behaved
  /// nondeterministically under the probe. Campaign fast paths that model
  /// checker schemes around the program consult these before trusting it.
  bool alters_flags = false;
  bool alters_valid = false;
  bool nondeterministic = false;
};

class CompiledProgram {
 public:
  /// What became of each chain piece (index-aligned with the chain).
  enum class Disposition : std::uint8_t { kKept, kFolded, kPruned };

  /// Run the optimized ops for stages [from_stage, to_stage), honoring
  /// the simulator's per-stage valid gate (an invalid bundle flows
  /// through a stage unevaluated, exactly like PipelineSim::step).
  void run(SignalSet& s, int from_stage, int to_stage) const {
    exec(ops_, op_begin_, s, from_stage, to_stage);
  }
  /// Same over the unpruned op list — the faithful reference the
  /// evaluators fall back to when a bind-time check rejects pruning.
  void run_full(SignalSet& s, int from_stage, int to_stage) const {
    exec(full_ops_, full_begin_, s, from_stage, to_stage);
  }

  /// Op-major batch execution — the bit-sliced fast path. For each stage
  /// st, every op of the stage is fetched once and applied to every slot
  /// k (bit k of `mask` set) with entry_stage[k] <= st and a valid bundle
  /// at the stage boundary, so one pass through the op array serves up to
  /// 64 trials. `use_full` selects the unpruned op list.
  void run_block(SignalSet* slots, const int* entry_stage,
                 std::uint64_t mask, bool use_full) const;

  int stages() const { return static_cast<int>(op_begin_.size()) - 1; }
  const CompileStats& stats() const { return stats_; }
  const std::vector<Disposition>& disposition() const { return disposition_; }
  /// The optimized op list actually differs from the full one.
  bool optimized() const {
    return stats_.folded > 0 || stats_.pruned > 0;
  }

 private:
  friend CompiledProgram compile_program(const PieceChain&,
                                         const PipelinePlan&,
                                         const CompileContract&,
                                         const CompileOptions&);

  /// One resolved op: either an indirect call into a chain piece's eval,
  /// or a constant-store range into stores_.
  struct Op {
    const std::function<void(SignalSet&)>* eval = nullptr;
    int store_begin = 0;
    int store_end = 0;
  };
  struct Store {
    int lane = 0;
    fp::u64 value = 0;
  };

  void exec(const std::vector<Op>& ops, const std::vector<int>& begin,
            SignalSet& s, int from_stage, int to_stage) const {
    for (int st = from_stage; st < to_stage; ++st) {
      if (!s.valid) continue;
      for (int i = begin[static_cast<std::size_t>(st)];
           i < begin[static_cast<std::size_t>(st) + 1]; ++i) {
        const Op& op = ops[static_cast<std::size_t>(i)];
        if (op.eval != nullptr) {
          (*op.eval)(s);
        } else {
          for (int k = op.store_begin; k < op.store_end; ++k) {
            const Store& w = stores_[static_cast<std::size_t>(k)];
            s.lane[static_cast<std::size_t>(w.lane)] = w.value;
          }
        }
      }
    }
  }

  std::vector<Op> ops_;        // optimized (== full after self-check failure)
  std::vector<Op> full_ops_;   // one call op per chain piece
  std::vector<Store> stores_;
  std::vector<int> op_begin_;    // per stage into ops_, size stages + 1
  std::vector<int> full_begin_;  // per stage into full_ops_
  std::vector<Disposition> disposition_;
  CompileStats stats_;
};

/// Compile `chain` + `plan` under `contract`. The chain is borrowed: it
/// must outlive the returned program (FpUnit keeps its chain at a stable
/// address for exactly this kind of use).
CompiledProgram compile_program(const PieceChain& chain,
                                const PipelinePlan& plan,
                                const CompileContract& contract,
                                const CompileOptions& opts = {});

}  // namespace flopsim::rtl
