// The unified evaluation API for campaign trial loops.
//
// Three backends answer the same question — "flip this latched bit at
// this (cycle, stage); what reaches the output register?" — at very
// different speeds:
//
//   * kInterpreted: the faithful reference. Each trial re-steps a
//     PipelineSim over the whole horizon with a one-shot injector, the
//     way the campaigns always ran.
//   * kCompiled: compile-once/run-many. bind() precomputes the clean
//     stage-boundary states B[v][s] for every workload vector by
//     stepping a real PipelineSim once; a trial then copies the struck
//     state, flips the bit, and replays only the compiled suffix stages
//     — O(pieces downstream of the strike) instead of
//     O(horizon x pieces).
//   * kBitsliced: the compiled backend's batch mode. trials() packs up
//     to 64 upsets into one block, walks the compiled program op-major
//     (each op is fetched once per block, applied to every live slot)
//     and packs the struck/corrupted verdicts into 64-bit words.
//     Pieces stay word-level functions, so the slicing is across
//     *trials* (one program pass serves 64 verdicts), not inside the
//     piece arithmetic.
//
// All backends are locked to the same contract: identical UpsetTrial
// results for identical upsets, byte for byte. The compiled backends
// guard themselves at bind time with a flip battery (pruned-vs-full
// suffix comparison over the occupied bits); if the pruned program ever
// disagrees, they quietly fall back to the full op list — still
// compiled, still fast, never wrong.
//
// Thread safety: bound state is immutable and shared; call fork() to get
// a per-worker evaluator (cheap — the program and B[v][s] table are
// shared behind shared_ptr).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "rtl/program.hpp"

namespace flopsim::rtl {

/// Backend selection, shared by CampaignSpec, the campaign configs, and
/// the --backend= CLI flag.
enum class EvalBackend {
  kAuto,         ///< resolve via FLOPSIM_BACKEND, default interpreted
  kInterpreted,
  kCompiled,
  kBitsliced,
};

const char* to_string(EvalBackend b);
/// Parse "interpreted" / "compiled" / "bitsliced" (the --backend= value
/// set); nullopt on anything else. "auto" intentionally has no spelling:
/// auto is the absence of the flag.
std::optional<EvalBackend> try_parse_backend(const std::string& name);
/// kAuto -> the FLOPSIM_BACKEND environment variable when set to a valid
/// backend name, else kInterpreted (exactly how threads=0 resolves via
/// FLOPSIM_THREADS). Non-auto values pass through.
EvalBackend resolve_backend(EvalBackend requested);

/// One latch upset: flip `bit` of data lane `lane` in stage `stage`'s
/// output register on clock `cycle`.
struct LatchUpset {
  long cycle = 0;
  int stage = 0;
  int lane = 0;
  int bit = 0;
};

/// What the upset did to the registered output of the vector it struck.
struct UpsetTrial {
  /// The upset landed on an occupied latch (a workload vector was in that
  /// stage on that cycle). False = bubble strike: nothing valid was hit,
  /// every other field is default.
  bool struck = false;
  /// Output observables of the struck vector differ from its clean run
  /// (valid bit, result lane, or flags).
  bool corrupted = false;
  bool valid = false;        ///< faulty DONE bit at the output register
  fp::u64 result = 0;        ///< faulty result-lane value
  std::uint8_t flags = 0;    ///< faulty carried flags
};

/// A bound evaluator answers upset trials against one fixed workload.
/// Lifecycle: make_evaluator() -> bind() once -> trial()/trials() many.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  virtual EvalBackend backend() const = 0;

  /// Bind the workload: `inputs` are the packed operand bundles presented
  /// on cycles 0..inputs.size()-1 (bubbles after), `horizon` the total
  /// cycles a campaign steps. Precomputes whatever the backend reuses
  /// across trials.
  virtual void bind(const std::vector<SignalSet>& inputs, long horizon) = 0;

  virtual int stages() const = 0;
  virtual int vectors() const = 0;

  /// Clean stage-boundary state: the contents of stage `stage`'s output
  /// register while holding vector `vector` (== the PipelineSim latch at
  /// cycle vector + stage). Valid after bind(); stage stages()-1 is the
  /// clean registered output.
  virtual const SignalSet& clean_state(int vector, int stage) const = 0;

  /// Run one upset trial. Requires bind().
  virtual UpsetTrial trial(const LatchUpset& upset) = 0;

  /// Batched trials — the bitsliced backend's fast path; the default
  /// implementation loops trial().
  virtual void trials(const LatchUpset* upsets, UpsetTrial* out,
                      std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = trial(upsets[i]);
  }

  /// A per-worker evaluator sharing this one's bound state. Evaluators
  /// are not safe for concurrent trial() calls; forks are.
  virtual std::unique_ptr<Evaluator> fork() const = 0;

  /// Compile diagnostics; nullptr for the interpreted backend.
  virtual const CompileStats* compile_stats() const { return nullptr; }
};

/// Build an evaluator over a borrowed chain + plan (both must outlive the
/// evaluator and every fork, like PipelineSim's borrow). `backend` may be
/// kAuto (resolved here). The compiled backends compile eagerly; the
/// interpreted one ignores the contract.
std::unique_ptr<Evaluator> make_evaluator(EvalBackend backend,
                                          const PieceChain& chain,
                                          const PipelinePlan& plan,
                                          const CompileContract& contract);

}  // namespace flopsim::rtl
