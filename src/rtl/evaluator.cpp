#include "rtl/evaluator.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>

#include "obs/trace.hpp"
#include "rtl/simulator.hpp"

namespace flopsim::rtl {

const char* to_string(EvalBackend b) {
  switch (b) {
    case EvalBackend::kAuto: return "auto";
    case EvalBackend::kInterpreted: return "interpreted";
    case EvalBackend::kCompiled: return "compiled";
    case EvalBackend::kBitsliced: return "bitsliced";
  }
  return "?";
}

std::optional<EvalBackend> try_parse_backend(const std::string& name) {
  if (name == "interpreted") return EvalBackend::kInterpreted;
  if (name == "compiled") return EvalBackend::kCompiled;
  if (name == "bitsliced") return EvalBackend::kBitsliced;
  return std::nullopt;
}

EvalBackend resolve_backend(EvalBackend requested) {
  if (requested != EvalBackend::kAuto) return requested;
  if (const char* env = std::getenv("FLOPSIM_BACKEND")) {
    if (const auto b = try_parse_backend(env)) return *b;
  }
  return EvalBackend::kInterpreted;
}

namespace {

/// The workload bound to an evaluator, plus the clean stage-boundary
/// states B[v][s]: the contents of stage s's output register while
/// holding vector v. Computed once by stepping a real PipelineSim (the
/// latch for (v, s) loads on cycle v + s), then shared immutably across
/// every fork — this is the single source of truth all three backends
/// compare against, so they cannot drift from the machine.
struct Bound {
  std::vector<SignalSet> inputs;
  long horizon = 0;
  int vectors = 0;
  int stages = 0;
  std::vector<SignalSet> states;  // [v * stages + s]

  const SignalSet& state(int v, int s) const {
    return states[static_cast<std::size_t>(v) *
                      static_cast<std::size_t>(stages) +
                  static_cast<std::size_t>(s)];
  }
};

std::shared_ptr<const Bound> bind_clean_states(
    const PieceChain& chain, const PipelinePlan& plan,
    const std::vector<SignalSet>& inputs, long horizon) {
  // The one-time full-pipeline simulation is the expensive part of
  // bind(); under --trace= this span lands beneath whatever owns the
  // evaluation (a campaign span, or a serve request's eval span via the
  // installed obs::SpanContext).
  auto span = obs::Tracer::global().span(
      "bind", "evaluator",
      {{"vectors", static_cast<long>(inputs.size())},
       {"stages", plan.stages()}});
  auto b = std::make_shared<Bound>();
  b->inputs = inputs;
  b->horizon = horizon;
  b->vectors = static_cast<int>(inputs.size());
  b->stages = plan.stages();
  b->states.assign(
      static_cast<std::size_t>(b->vectors) * static_cast<std::size_t>(b->stages),
      SignalSet{});
  PipelineSim sim(&chain, plan);
  for (long t = 0; t < horizon; ++t) {
    sim.step(t < b->vectors ? std::optional<SignalSet>(
                                  b->inputs[static_cast<std::size_t>(t)])
                            : std::nullopt);
    const std::vector<SignalSet>& latch = sim.latches();
    for (int s = 0; s < b->stages; ++s) {
      const long v = t - s;
      if (v >= 0 && v < b->vectors) {
        b->states[static_cast<std::size_t>(v) *
                      static_cast<std::size_t>(b->stages) +
                  static_cast<std::size_t>(s)] =
            latch[static_cast<std::size_t>(s)];
      }
    }
  }
  return b;
}

// ---------------------------------------------------------------------------
// Interpreted: the faithful reference. Every trial re-steps a PipelineSim
// over the whole horizon with a one-shot latch flip, comparing the output
// register against the clean run cycle by cycle.

class InterpretedEvaluator final : public Evaluator {
 public:
  InterpretedEvaluator(const PieceChain& chain, const PipelinePlan& plan,
                       int result_lane)
      : chain_(&chain),
        plan_(plan),
        result_lane_(result_lane),
        sim_(&chain, plan) {}

  EvalBackend backend() const override { return EvalBackend::kInterpreted; }

  void bind(const std::vector<SignalSet>& inputs, long horizon) override {
    bound_ = bind_clean_states(*chain_, plan_, inputs, horizon);
  }

  int stages() const override { return plan_.stages(); }
  int vectors() const override { return bound_ ? bound_->vectors : 0; }

  const SignalSet& clean_state(int vector, int stage) const override {
    return bound_->state(vector, stage);
  }

  UpsetTrial trial(const LatchUpset& u) override {
    UpsetTrial t;
    const Bound& b = *bound_;
    const int s_count = plan_.stages();
    const long v = u.cycle - u.stage;
    const bool struck =
        u.stage >= 0 && u.stage < s_count && v >= 0 && v < b.vectors &&
        u.lane >= 0 && u.lane < kMaxSignals;
    FlipObserver obs;
    obs.u = u;
    sim_.reset();
    sim_.set_latch_observer(&obs);
    for (long c = 0; c < b.horizon; ++c) {
      sim_.step(c < b.vectors ? std::optional<SignalSet>(
                                    b.inputs[static_cast<std::size_t>(c)])
                              : std::nullopt);
      const SignalSet& out = sim_.output();
      const long ov = c - (s_count - 1);
      const SignalSet* clean = (ov >= 0 && ov < b.vectors)
                                   ? &b.state(static_cast<int>(ov), s_count - 1)
                                   : nullptr;
      const bool clean_valid = clean != nullptr && clean->valid;
      if (out.valid != clean_valid) {
        t.corrupted = true;
      } else if (out.valid &&
                 (out.lane[static_cast<std::size_t>(result_lane_)] !=
                      clean->lane[static_cast<std::size_t>(result_lane_)] ||
                  out.flags != clean->flags)) {
        t.corrupted = true;
      }
      if (struck && c == v + s_count - 1) {
        t.valid = out.valid;
        t.result = out.lane[static_cast<std::size_t>(result_lane_)];
        t.flags = out.flags;
      }
    }
    sim_.set_latch_observer(nullptr);
    if (!struck) return UpsetTrial{};  // bubble strike: provably benign
    t.struck = true;
    return t;
  }

  std::unique_ptr<Evaluator> fork() const override {
    auto e = std::make_unique<InterpretedEvaluator>(*chain_, plan_,
                                                    result_lane_);
    e->bound_ = bound_;
    return e;
  }

 private:
  /// One-shot latch flip, applied unconditionally at the matching edge —
  /// the same contract as the fault injector (bubbles get flipped too;
  /// they just never reach a valid output).
  struct FlipObserver final : LatchObserver {
    LatchUpset u;
    void on_latch(long cycle, int stage, SignalSet& latch) override {
      if (cycle == u.cycle && stage == u.stage && u.lane >= 0 &&
          u.lane < kMaxSignals) {
        latch.lane[static_cast<std::size_t>(u.lane)] ^=
            fp::u64{1} << (u.bit & 63);
      }
    }
  };

  const PieceChain* chain_;
  PipelinePlan plan_;
  int result_lane_;
  PipelineSim sim_;
  std::shared_ptr<const Bound> bound_;
};

// ---------------------------------------------------------------------------
// Compiled: copy the struck clean state, flip, replay only the compiled
// suffix stages. The bind-time flip battery decides once whether the
// pruned op list can be trusted on faulty states; on any disagreement the
// full (unpruned) op list is used — still compiled, never wrong.

/// State shared by a compiled evaluator and all its forks. Immutable
/// after bind() (bind before forking).
struct CompiledCore {
  const PieceChain* chain = nullptr;
  PipelinePlan plan;
  int result_lane = 0;
  CompiledProgram program;
  std::shared_ptr<const Bound> bound;
  bool use_full = false;
};

constexpr std::size_t kMaxBatteryFlips = 4096;

/// Pruned-vs-full suffix comparison over the occupied bits of the bound
/// clean states (stride-sampled past kMaxBatteryFlips sites). Liveness
/// inference is observational and a faulty state can take branches the
/// probe never saw; this battery is what earns the pruned list the right
/// to run on flipped states.
bool flip_battery_passes(const CompiledCore& core) {
  if (!core.program.optimized()) return true;  // pruned == full already
  const Bound& b = *core.bound;
  const int s_count = b.stages;
  if (b.vectors == 0) return true;
  struct Site {
    int stage;
    int lane;
    int bit;
  };
  std::vector<Site> sites;
  for (int s = 0; s < s_count; ++s) {
    std::array<fp::u64, kMaxSignals> occ{};
    for (int v = 0; v < b.vectors; ++v) {
      const SignalSet& st = b.state(v, s);
      for (int l = 0; l < kMaxSignals; ++l) {
        occ[static_cast<std::size_t>(l)] |=
            st.lane[static_cast<std::size_t>(l)];
      }
    }
    for (int l = 0; l < kMaxSignals; ++l) {
      for (fp::u64 w = occ[static_cast<std::size_t>(l)]; w != 0; w &= w - 1) {
        sites.push_back(Site{s, l, std::countr_zero(w)});
      }
    }
  }
  const std::size_t stride =
      sites.size() > kMaxBatteryFlips
          ? (sites.size() + kMaxBatteryFlips - 1) / kMaxBatteryFlips
          : 1;
  const auto rl = static_cast<std::size_t>(core.result_lane);
  for (std::size_t i = 0; i < sites.size(); i += stride) {
    const Site& site = sites[i];
    const int v = static_cast<int>(i % static_cast<std::size_t>(b.vectors));
    SignalSet pruned = b.state(v, site.stage);
    pruned.lane[static_cast<std::size_t>(site.lane)] ^= fp::u64{1} << site.bit;
    SignalSet full = pruned;
    core.program.run(pruned, site.stage + 1, s_count);
    core.program.run_full(full, site.stage + 1, s_count);
    const bool same_observables =
        pruned.valid == full.valid &&
        (!full.valid ||
         (pruned.lane[rl] == full.lane[rl] && pruned.flags == full.flags));
    if (!same_observables) return false;
  }
  return true;
}

class CompiledEvaluator : public Evaluator {
 public:
  CompiledEvaluator(const PieceChain& chain, const PipelinePlan& plan,
                    const CompileContract& contract)
      : core_(std::make_shared<CompiledCore>()) {
    core_->chain = &chain;
    core_->plan = plan;
    core_->result_lane = contract.result_lane;
    auto span = obs::Tracer::global().span("compile", "evaluator",
                                           {{"stages", plan.stages()}});
    core_->program = compile_program(chain, plan, contract);
  }
  explicit CompiledEvaluator(std::shared_ptr<CompiledCore> core)
      : core_(std::move(core)) {}

  EvalBackend backend() const override { return EvalBackend::kCompiled; }

  void bind(const std::vector<SignalSet>& inputs, long horizon) override {
    core_->bound = bind_clean_states(*core_->chain, core_->plan, inputs,
                                     horizon);
    core_->use_full = !flip_battery_passes(*core_);
  }

  int stages() const override { return core_->plan.stages(); }
  int vectors() const override {
    return core_->bound ? core_->bound->vectors : 0;
  }

  const SignalSet& clean_state(int vector, int stage) const override {
    return core_->bound->state(vector, stage);
  }

  UpsetTrial trial(const LatchUpset& u) override {
    UpsetTrial t;
    const CompiledCore& core = *core_;
    const Bound& b = *core.bound;
    const int s_count = b.stages;
    const long v = u.cycle - u.stage;
    if (u.stage < 0 || u.stage >= s_count || v < 0 || v >= b.vectors ||
        u.lane < 0 || u.lane >= kMaxSignals) {
      return t;  // bubble strike
    }
    SignalSet s = b.state(static_cast<int>(v), u.stage);
    s.lane[static_cast<std::size_t>(u.lane)] ^= fp::u64{1} << (u.bit & 63);
    if (core.use_full) {
      core.program.run_full(s, u.stage + 1, s_count);
    } else {
      core.program.run(s, u.stage + 1, s_count);
    }
    const SignalSet& clean = b.state(static_cast<int>(v), s_count - 1);
    const auto rl = static_cast<std::size_t>(core.result_lane);
    t.struck = true;
    t.valid = s.valid;
    t.result = s.lane[rl];
    t.flags = s.flags;
    t.corrupted =
        s.valid != clean.valid ||
        (s.valid && (t.result != clean.lane[rl] || t.flags != clean.flags));
    return t;
  }

  std::unique_ptr<Evaluator> fork() const override {
    return std::make_unique<CompiledEvaluator>(core_);
  }

  const CompileStats* compile_stats() const override {
    return &core_->program.stats();
  }

 protected:
  const std::shared_ptr<CompiledCore>& core() const { return core_; }

 private:
  std::shared_ptr<CompiledCore> core_;
};

// ---------------------------------------------------------------------------
// Bitsliced: the compiled backend's batch mode. trials() packs up to 64
// upsets into one block; the fault masks are applied slot-wise up front,
// the compiled program then runs op-major over the block (each op fetched
// once, applied to every live slot), and the struck/corrupted verdicts
// are accumulated as bits of 64-bit words before being unpacked into the
// per-trial results.

class BitslicedEvaluator final : public CompiledEvaluator {
 public:
  using CompiledEvaluator::CompiledEvaluator;

  EvalBackend backend() const override { return EvalBackend::kBitsliced; }

  void trials(const LatchUpset* upsets, UpsetTrial* out,
              std::size_t n) override {
    const CompiledCore& core = *this->core();
    const Bound& b = *core.bound;
    const int s_count = b.stages;
    const auto rl = static_cast<std::size_t>(core.result_lane);
    for (std::size_t base = 0; base < n; base += 64) {
      const int m = static_cast<int>(std::min<std::size_t>(64, n - base));
      std::uint64_t struck = 0;
      std::array<int, 64> entry{};
      std::array<int, 64> vec{};
      for (int k = 0; k < m; ++k) {
        const LatchUpset& u = upsets[base + static_cast<std::size_t>(k)];
        out[base + static_cast<std::size_t>(k)] = UpsetTrial{};
        entry[static_cast<std::size_t>(k)] = s_count;  // never active
        const long v = u.cycle - u.stage;
        if (u.stage < 0 || u.stage >= s_count || v < 0 || v >= b.vectors ||
            u.lane < 0 || u.lane >= kMaxSignals) {
          continue;  // bubble strike
        }
        SignalSet& slot = slot_[static_cast<std::size_t>(k)];
        slot = b.state(static_cast<int>(v), u.stage);
        slot.lane[static_cast<std::size_t>(u.lane)] ^=
            fp::u64{1} << (u.bit & 63);
        entry[static_cast<std::size_t>(k)] = u.stage + 1;
        vec[static_cast<std::size_t>(k)] = static_cast<int>(v);
        struck |= std::uint64_t{1} << k;
      }
      if (struck != 0) {
        core.program.run_block(slot_.data(), entry.data(), struck,
                               core.use_full);
      }
      std::uint64_t corrupted = 0;
      for (std::uint64_t w = struck; w != 0; w &= w - 1) {
        const int k = std::countr_zero(w);
        const SignalSet& s = slot_[static_cast<std::size_t>(k)];
        const SignalSet& clean =
            b.state(vec[static_cast<std::size_t>(k)], s_count - 1);
        UpsetTrial& t = out[base + static_cast<std::size_t>(k)];
        t.struck = true;
        t.valid = s.valid;
        t.result = s.lane[rl];
        t.flags = s.flags;
        if (s.valid != clean.valid ||
            (s.valid &&
             (t.result != clean.lane[rl] || t.flags != clean.flags))) {
          corrupted |= std::uint64_t{1} << k;
        }
      }
      for (std::uint64_t w = corrupted; w != 0; w &= w - 1) {
        out[base + static_cast<std::size_t>(std::countr_zero(w))].corrupted =
            true;
      }
    }
  }

  std::unique_ptr<Evaluator> fork() const override {
    return std::make_unique<BitslicedEvaluator>(core());
  }

 private:
  std::array<SignalSet, 64> slot_{};
};

}  // namespace

std::unique_ptr<Evaluator> make_evaluator(EvalBackend backend,
                                          const PieceChain& chain,
                                          const PipelinePlan& plan,
                                          const CompileContract& contract) {
  switch (resolve_backend(backend)) {
    case EvalBackend::kCompiled:
      return std::make_unique<CompiledEvaluator>(chain, plan, contract);
    case EvalBackend::kBitsliced:
      return std::make_unique<BitslicedEvaluator>(chain, plan, contract);
    case EvalBackend::kAuto:
    case EvalBackend::kInterpreted:
      break;
  }
  return std::make_unique<InterpretedEvaluator>(chain, plan,
                                                contract.result_lane);
}

}  // namespace flopsim::rtl
