// Pipeline planning and timing/area evaluation for a piece chain.
//
// Given a chain of N pieces and a requested depth S, the planner selects
// S-1 legal cut points minimizing the maximum per-stage combinational delay
// (the classic balanced chain partition, solved exactly by DP). This mirrors
// the paper's methodology — "identify the critical path... insert a new
// pipeline stage to break it down... repeat until diminishing returns" —
// but jumps straight to the optimal register placement for each depth.
//
// Timing: achieved period = max stage delay + register overhead.
// Area: logic + pipeline/output registers, with FF absorption into the
// flip-flops already present in logic slices (the paper's "pipelining can
// exploit the unused flipflops... and cause only a moderate increase in
// area"), then PAR objective scaling.
#pragma once

#include <vector>

#include "device/tech.hpp"
#include "rtl/piece.hpp"

namespace flopsim::rtl {

struct PipelinePlan {
  /// Piece index ranges per stage: stage s covers pieces
  /// [stage_begin[s], stage_begin[s+1]). stage_begin.front() == 0,
  /// stage_begin.back() == pieces.size().
  std::vector<int> stage_begin;

  int stages() const { return static_cast<int>(stage_begin.size()) - 1; }
};

/// Maximum legal depth of a chain: one stage per cuttable boundary plus one.
int max_stages(const PieceChain& chain);

/// Combinational delay of pieces [begin, end) placed in one stage, honoring
/// same-group chaining discounts (carry chains crossing chunk boundaries).
double segment_delay(const PieceChain& chain, int begin, int end);

/// Plan a pipeline of exactly `stages` stages (clamped to [1, max_stages]).
PipelinePlan plan_pipeline(const PieceChain& chain, int stages);

struct Timing {
  double critical_ns = 0.0;  ///< worst stage combinational delay
  double period_ns = 0.0;    ///< critical + register overhead
  double freq_mhz = 0.0;
  int critical_stage = 0;
};

Timing evaluate_timing(const PieceChain& chain, const PipelinePlan& plan,
                       const device::TechModel& tech);

struct AreaBreakdown {
  device::Resources logic;      ///< combinational pieces
  int pipeline_ffs = 0;         ///< FFs of internal cuts + output register
  int absorbed_ffs = 0;         ///< FFs packed into existing logic slices
  device::Resources total;      ///< post-packing, post-PAR-factor totals
};

AreaBreakdown evaluate_area(const PieceChain& chain, const PipelinePlan& plan,
                            const device::TechModel& tech,
                            device::Objective objective);

}  // namespace flopsim::rtl
