// Cycle-accurate simulation of a pipelined piece chain.
//
// Each call to step() advances one clock: every stage evaluates its pieces
// on the contents of the upstream latch, and the result is captured in its
// own latch. Data emerges after exactly plan.stages() cycles with the DONE
// (valid) bit set — latency is the pipeline depth, throughput one operation
// per cycle, exactly like the paper's cores.
#pragma once

#include <optional>

#include "rtl/pipeline.hpp"

namespace flopsim::rtl {

/// Observer called immediately after a stage latch loads on a clock edge —
/// the narrow hook the fault layer uses to flip latched bits (SEU
/// injection). With no observer attached the simulator behaves exactly as
/// before; an attached observer that never mutates the latch is a no-op.
class LatchObserver {
 public:
  virtual ~LatchObserver() = default;
  /// `cycle` is the 0-based clock this edge belongs to (== cycles() before
  /// the step completes); `stage` indexes latches()/the stage output
  /// register just written; `latch` may be mutated in place.
  virtual void on_latch(long cycle, int stage, SignalSet& latch) = 0;
};

class PipelineSim {
 public:
  PipelineSim(const PieceChain* chain, PipelinePlan plan);

  /// Advance one clock. `input` is the operand bundle presented this cycle
  /// (std::nullopt = bubble).
  void step(const std::optional<SignalSet>& input);

  /// The output register contents after the latest step(); .valid is the
  /// DONE signal.
  const SignalSet& output() const { return latch_.back(); }

  int latency() const { return plan_.stages(); }

  /// Drop all in-flight state (e.g. between test vectors).
  void reset();

  /// Total cycles stepped since construction/reset.
  long cycles() const { return cycles_; }

  /// Stage output registers after the latest step() (for activity
  /// measurement and debugging).
  const std::vector<SignalSet>& latches() const { return latch_; }

  /// Per-stage count of cycles the stage's output latch held valid data
  /// since construction/reset — the occupancy numerator the obs/ probes
  /// read (bubbles for stage s are cycles() - valid_cycles()[s]).
  const std::vector<long>& valid_cycles() const { return valid_cycles_; }

  /// Attach (or detach with nullptr) the post-latch observer. Not owned;
  /// survives reset().
  void set_latch_observer(LatchObserver* observer) { observer_ = observer; }
  LatchObserver* latch_observer() const { return observer_; }

 private:
  const PieceChain* chain_;  // not owned
  PipelinePlan plan_;
  std::vector<SignalSet> latch_;  // latch_[s] = output register of stage s
  std::vector<long> valid_cycles_;  // per stage, cycles latched valid
  long cycles_ = 0;
  LatchObserver* observer_ = nullptr;  // not owned
};

}  // namespace flopsim::rtl
