#include "rtl/trace.hpp"

#include <iomanip>
#include <ostream>

namespace flopsim::rtl {

TraceRecorder::TraceRecorder(std::vector<int> lanes)
    : lanes_(std::move(lanes)) {}

void TraceRecorder::capture(const PipelineSim& sim) {
  frames_.push_back(Frame{sim.latches()});
}

std::vector<int> TraceRecorder::effective_lanes() const {
  if (!lanes_.empty()) return lanes_;
  std::vector<int> all(kMaxSignals);
  for (int i = 0; i < kMaxSignals; ++i) all[static_cast<std::size_t>(i)] = i;
  return all;
}

void TraceRecorder::dump_text(std::ostream& os) const {
  const std::vector<int> lanes = effective_lanes();
  if (frames_.empty()) {
    os << "(empty trace)\n";
    return;
  }
  const std::size_t stages = frames_.front().latches.size();
  os << "cycle";
  for (std::size_t s = 0; s < stages; ++s) {
    os << " | s" << s << ".v";
    for (int l : lanes) os << " s" << s << ".L" << l;
  }
  os << "\n";
  for (std::size_t c = 0; c < frames_.size(); ++c) {
    os << std::setw(5) << c;
    for (const SignalSet& latch : frames_[c].latches) {
      os << " | " << (latch.valid ? 1 : 0);
      for (int l : lanes) {
        os << " " << std::hex << latch[l] << std::dec;
      }
    }
    os << "\n";
  }
}

void TraceRecorder::dump_vcd(std::ostream& os, const std::string& top) const {
  const std::vector<int> lanes = effective_lanes();
  const std::size_t stages =
      frames_.empty() ? 0 : frames_.front().latches.size();

  os << "$timescale 1ns $end\n";
  os << "$scope module " << top << " $end\n";
  // Identifier per signal: printable ASCII starting at '!'.
  auto ident = [&lanes](std::size_t stage, std::size_t lane_idx,
                        bool valid) -> std::string {
    const std::size_t per_stage = lanes.size() + 1;
    const std::size_t index =
        stage * per_stage + (valid ? 0 : lane_idx + 1);
    std::string id;
    std::size_t v = index;
    do {
      id += static_cast<char>('!' + v % 94);
      v /= 94;
    } while (v != 0);
    return id;
  };
  for (std::size_t s = 0; s < stages; ++s) {
    os << "$var wire 1 " << ident(s, 0, true) << " stage" << s
       << "_valid $end\n";
    for (std::size_t li = 0; li < lanes.size(); ++li) {
      os << "$var wire 64 " << ident(s, li, false) << " stage" << s
         << "_lane" << lanes[li] << " $end\n";
    }
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  std::vector<SignalSet> prev(stages);
  bool first = true;
  for (std::size_t c = 0; c < frames_.size(); ++c) {
    os << "#" << c << "\n";
    for (std::size_t s = 0; s < stages; ++s) {
      const SignalSet& cur = frames_[c].latches[s];
      if (first || cur.valid != prev[s].valid) {
        os << (cur.valid ? '1' : '0') << ident(s, 0, true) << "\n";
      }
      for (std::size_t li = 0; li < lanes.size(); ++li) {
        const fp::u64 v = cur[lanes[li]];
        if (first || v != prev[s][lanes[li]]) {
          os << "b";
          for (int bit = 63; bit >= 0; --bit) {
            os << ((v >> bit) & 1 ? '1' : '0');
          }
          os << " " << ident(s, li, false) << "\n";
        }
      }
      prev[s] = cur;
    }
    first = false;
  }
}

}  // namespace flopsim::rtl
