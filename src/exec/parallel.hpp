// Deterministic host-side parallelism for the Monte-Carlo campaign and
// sweep engines.
//
// Every hot loop in the analysis layer is an embarrassingly parallel trial
// loop: the fault list (or depth grid) is fully drawn up front, each trial
// is independent, and the tallies are a fold over per-trial verdicts. This
// layer supplies the one primitive those loops need — parallel_for_chunked,
// a fixed-size thread pool running *static* contiguous chunks — under a
// strict determinism contract:
//
//  * Work is split into exactly `threads` contiguous chunks of [0, count),
//    assigned by worker index (never stolen, never rebalanced), so which
//    worker computes which trial is a pure function of (count, threads).
//  * Workers only write per-index slots the caller pre-sized; the caller
//    reduces those slots in index (fault-list) order afterwards, never in
//    arrival order.
//  * Therefore results are bit-identical for every thread count, including
//    1 — the serial fallback, which runs the body inline on the caller with
//    no pool at all (and is what FLOPSIM_THREADS=1 selects).
//
// Instrumentation: every chunk execution is wrapped in an obs:: span
// (name "chunk", category "worker", tid = worker index) so a `--trace=`
// run shows per-worker utilization; with the tracer disabled this costs
// one relaxed atomic load per chunk. Workers pin obs::set_thread_id to
// their index, which also fixes their metric shard deterministically.
// run_chunked also captures the calling thread's obs::SpanContext and
// installs it around every worker chunk, so work done on behalf of a
// traced scope (a serve request) keeps its parent/child span linkage
// across the pool boundary.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace flopsim::exec {

class CancelToken;

/// Worker thread count to use. `requested >= 1` wins as-is (clamped to
/// kMaxThreads); 0 means auto: the FLOPSIM_THREADS environment variable
/// when set to a positive integer, else std::thread::hardware_concurrency()
/// (1 when the implementation reports it as unavailable/0).
int resolve_threads(int requested = 0);

inline constexpr int kMaxThreads = 256;

/// A fixed-size pool of `threads - 1` background workers (chunk 0 always
/// runs on the calling thread, so a 1-thread pool spawns nothing and is
/// purely serial). Reusable: run_chunked may be called any number of times.
class ThreadPool {
 public:
  /// `threads` is clamped to [1, kMaxThreads].
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// fn(worker, begin, end): process indices [begin, end) as worker
  /// `worker` in [0, threads()).
  using ChunkFn =
      std::function<void(int worker, std::size_t begin, std::size_t end)>;

  /// Split [0, count) into threads() static contiguous chunks (the first
  /// count % threads chunks are one index longer) and run fn on each —
  /// chunk 0 on the calling thread. Blocks until every chunk finished.
  /// If chunks threw, rethrows the lowest-worker-index exception (a
  /// deterministic choice) after all workers have quiesced.
  void run_chunked(std::size_t count, const ChunkFn& fn);

  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  /// The static chunk assignment: worker `worker` of `threads` owns
  /// [begin, end) of [0, count). Exposed for tests and for callers that
  /// need to reason about worker-local state.
  static Chunk chunk_of(std::size_t count, int threads, int worker);

 private:
  struct Impl;
  int threads_;
  std::unique_ptr<Impl> impl_;
};

/// One-shot convenience over ThreadPool: resolve_threads(threads), clamp to
/// count (never more workers than trials), run fn over the static chunks
/// and return when all are done. With one effective thread the body runs
/// inline — no threads are created and no synchronization happens.
void parallel_for_chunked(std::size_t count, int threads,
                          const ThreadPool::ChunkFn& fn);

// --- static-grid execution (the resilience substrate) -------------------
//
// parallel_for_chunked's chunk boundaries are a function of the thread
// count, which is exactly wrong for checkpointing: a campaign resumed at a
// different --threads= must re-run the *same* remaining chunks. The grid
// variant fixes the chunk boundaries by an explicit chunk size instead —
// a pure function of (count, chunk) — and distributes contiguous spans of
// grid chunks across the pool's static workers. Per-trial slot writes and
// the caller's ordered reduction keep results bit-identical at any thread
// count, for any chunk size, and across any interrupt/resume split.

struct GridOptions {
  /// Trials per grid chunk. 0 = one chunk per effective worker (exactly
  /// parallel_for_chunked's legacy layout). Checkpointed campaigns pass an
  /// explicit size so the grid survives thread-count changes.
  std::size_t chunk = 0;
  /// Per-chunk skip flags (restored-from-checkpoint chunks); nonzero
  /// entries are not run but count as done. Must have at least
  /// grid_chunk_count entries when non-null.
  const std::vector<char>* skip = nullptr;
  /// Polled between chunks; once cancelled() no further chunks start
  /// (in-flight chunks always finish).
  CancelToken* cancel = nullptr;
  /// Invoked after each chunk this invocation runs, SERIALIZED under one
  /// internal mutex (safe place for checkpoint appends and running
  /// tallies). Invocation order across workers is nondeterministic — only
  /// per-chunk exactly-once is guaranteed.
  std::function<void(std::size_t chunk_index, std::size_t begin,
                     std::size_t end)>
      on_chunk_done;
};

struct GridResult {
  std::size_t chunks = 0;     ///< grid chunks over [0, count)
  std::size_t completed = 0;  ///< chunks run by this invocation
  std::size_t skipped = 0;    ///< chunks skipped via GridOptions::skip
  std::vector<char> done;     ///< per-chunk: skipped or completed

  /// Every chunk done (restored or run) — false means cancelled mid-run.
  bool complete() const { return completed + skipped == chunks; }
};

/// Number of grid chunks parallel_for_grid(count, threads, ..., opts)
/// executes for `chunk` trials per chunk (0 resolves like GridOptions).
std::size_t grid_chunk_count(std::size_t count, int threads,
                             std::size_t chunk);

/// Run fn over the static chunk grid: fn(worker, begin, end) once per
/// grid chunk, contiguous chunk spans assigned per worker, chunk
/// boundaries independent of the thread count when opts.chunk > 0.
/// Serial (inline, no pool) with one effective worker.
GridResult parallel_for_grid(std::size_t count, int threads,
                             const ThreadPool::ChunkFn& fn,
                             const GridOptions& opts = {});

}  // namespace flopsim::exec
