// Cooperative cancellation for long-running campaigns and sweeps.
//
// A killed Monte-Carlo run used to lose every tally; this token is the
// resilience layer's stop signal. Producers (SIGINT/SIGTERM handlers, run
// budgets, convergence early-stop) call request(); consumers (the grid
// engine in exec/parallel.hpp, the campaign drivers) poll cancelled() at
// chunk boundaries, finish the chunks already in flight, flush their
// checkpoint, and return a partial result. Nothing is ever torn down
// mid-trial, so a cancelled campaign's completed chunks are bit-identical
// to the same chunks of an uninterrupted run.
//
// Everything here is lock-free atomics: request() is async-signal-safe
// (the installed SIGINT/SIGTERM handlers call it directly) and cancelled()
// is cheap enough to poll per chunk. The first request() wins the recorded
// reason; later requests keep the flag set but do not overwrite it.
#pragma once

#include <atomic>
#include <stdexcept>

namespace flopsim::exec {

class CancelToken {
 public:
  enum class Reason : int {
    kNone = 0,
    kSignal,       ///< SIGINT/SIGTERM via install_signal_handlers()
    kTimeBudget,   ///< the set_deadline_after() deadline passed
    kTrialBudget,  ///< a trial budget was exhausted
    kConverged,    ///< confidence half-width early stop
    kOther,        ///< programmatic request()
  };

  /// Request cancellation. First caller's reason sticks. Safe from any
  /// thread and from signal handlers.
  void request(Reason r = Reason::kOther) {
    int expected = static_cast<int>(Reason::kNone);
    reason_.compare_exchange_strong(expected, static_cast<int>(r),
                                    std::memory_order_relaxed);
    flag_.store(true, std::memory_order_release);
  }

  /// True once request() was called or the deadline (if any) has passed.
  /// The deadline check promotes itself into a sticky kTimeBudget request
  /// so the reason survives later polls.
  bool cancelled() const;

  Reason reason() const {
    return static_cast<Reason>(reason_.load(std::memory_order_relaxed));
  }

  /// Arm a wall-clock deadline `seconds` from now (<= 0 disarms).
  void set_deadline_after(double seconds);

  /// Clear flag, reason, and deadline (tests; between independent runs).
  void reset();

 private:
  mutable std::atomic<bool> flag_{false};
  mutable std::atomic<int> reason_{static_cast<int>(Reason::kNone)};
  /// Deadline in microseconds on the steady clock; 0 = unarmed.
  std::atomic<long long> deadline_us_{0};
};

const char* to_string(CancelToken::Reason r);

/// The process-wide token the signal handlers feed. Tools and benches
/// poll this one unless they thread their own.
CancelToken& global_cancel_token();

/// Route SIGINT and SIGTERM into global_cancel_token().request(kSignal).
/// Idempotent. The handler only touches lock-free atomics; the previous
/// disposition is replaced (campaign tools own their shutdown).
void install_signal_handlers();

/// Signal number that triggered the global token (0 if none yet).
int last_signal();

/// Thrown by sweeps and other all-or-nothing loops when cancellation
/// arrives mid-run and a partial result would be meaningless. Campaign
/// drivers do NOT throw this — they return partial tallies instead.
class Interrupted : public std::runtime_error {
 public:
  explicit Interrupted(CancelToken::Reason r);
  CancelToken::Reason reason;
};

}  // namespace flopsim::exec
