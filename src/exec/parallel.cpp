#include "exec/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/cancel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace flopsim::exec {

namespace {

/// Run one chunk under a worker span. With the tracer disabled (the
/// default) this is one relaxed atomic load on top of the chunk itself.
void run_chunk_traced(const ThreadPool::ChunkFn& fn, int worker,
                      std::size_t begin, std::size_t end) {
  auto span = obs::Tracer::global().span(
      "chunk", "worker",
      {{"worker", static_cast<long>(worker)},
       {"begin", static_cast<long>(begin)},
       {"end", static_cast<long>(end)}});
  fn(worker, begin, end);
}

}  // namespace

int resolve_threads(int requested) {
  if (requested >= 1) {
    return requested > kMaxThreads ? kMaxThreads : requested;
  }
  if (const char* env = std::getenv("FLOPSIM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return v > kMaxThreads ? kMaxThreads : static_cast<int>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return hw > static_cast<unsigned>(kMaxThreads) ? kMaxThreads
                                                 : static_cast<int>(hw);
}

ThreadPool::Chunk ThreadPool::chunk_of(std::size_t count, int threads,
                                       int worker) {
  Chunk c;
  if (threads < 1 || worker < 0 || worker >= threads) return c;
  const std::size_t t = static_cast<std::size_t>(threads);
  const std::size_t w = static_cast<std::size_t>(worker);
  const std::size_t base = count / t;
  const std::size_t rem = count % t;
  c.begin = w * base + (w < rem ? w : rem);
  c.end = c.begin + base + (w < rem ? 1 : 0);
  return c;
}

struct ThreadPool::Impl {
  std::mutex m;
  std::condition_variable work_cv;   // new generation / stop
  std::condition_variable done_cv;   // pending hit zero
  const ChunkFn* fn = nullptr;       // borrowed for the current generation
  std::size_t count = 0;
  obs::SpanContext ctx{};            // caller's span scope, per generation
  std::uint64_t generation = 0;
  int pending = 0;
  bool stop = false;
  std::vector<std::exception_ptr> errors;  // one slot per worker index
  std::vector<std::thread> workers;        // workers 1..threads-1
};

ThreadPool::ThreadPool(int threads)
    : threads_(threads < 1 ? 1 : (threads > kMaxThreads ? kMaxThreads
                                                        : threads)),
      impl_(std::make_unique<Impl>()) {
  impl_->errors.assign(static_cast<std::size_t>(threads_), nullptr);
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 1; w < threads_; ++w) {
    impl_->workers.emplace_back([this, w] {
      Impl& s = *impl_;
      // Pin the worker's metric shard / trace timeline row to its index.
      obs::set_thread_id(w);
      std::uint64_t seen = 0;
      for (;;) {
        const ChunkFn* fn = nullptr;
        std::size_t count = 0;
        obs::SpanContext ctx;
        {
          std::unique_lock<std::mutex> lk(s.m);
          s.work_cv.wait(lk,
                         [&] { return s.stop || s.generation != seen; });
          if (s.stop) return;
          seen = s.generation;
          fn = s.fn;
          count = s.count;
          ctx = s.ctx;
        }
        std::exception_ptr err;
        try {
          // Work runs in the caller's trace scope: a serve request's
          // worker-side chunk spans land under the owning request.
          obs::ScopedSpanContext scope(ctx);
          const Chunk c = chunk_of(count, threads_, w);
          if (c.begin < c.end) run_chunk_traced(*fn, w, c.begin, c.end);
        } catch (...) {
          err = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lk(s.m);
          s.errors[static_cast<std::size_t>(w)] = err;
          if (--s.pending == 0) s.done_cv.notify_all();
        }
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

void ThreadPool::run_chunked(std::size_t count, const ChunkFn& fn) {
  Impl& s = *impl_;
  {
    std::lock_guard<std::mutex> lk(s.m);
    s.fn = &fn;
    s.count = count;
    s.ctx = obs::current_span_context();
    s.errors.assign(static_cast<std::size_t>(threads_), nullptr);
    s.pending = threads_ - 1;
    ++s.generation;
  }
  s.work_cv.notify_all();

  std::exception_ptr own;
  try {
    const Chunk c = chunk_of(count, threads_, 0);
    if (c.begin < c.end) run_chunk_traced(fn, 0, c.begin, c.end);
  } catch (...) {
    own = std::current_exception();
  }

  std::unique_lock<std::mutex> lk(s.m);
  s.done_cv.wait(lk, [&] { return s.pending == 0; });
  s.errors[0] = own;
  for (const std::exception_ptr& e : s.errors) {
    if (e) std::rethrow_exception(e);
  }
}

void parallel_for_chunked(std::size_t count, int threads,
                          const ThreadPool::ChunkFn& fn) {
  int t = resolve_threads(threads);
  if (static_cast<std::size_t>(t) > count) {
    t = count < 1 ? 1 : static_cast<int>(count);
  }
  if (t <= 1) {
    if (count > 0) run_chunk_traced(fn, 0, 0, count);
    return;
  }
  ThreadPool pool(t);
  pool.run_chunked(count, fn);
}

namespace {

/// Effective worker count for a grid run: never more workers than chunks.
int grid_threads(std::size_t nchunks, int threads) {
  int t = resolve_threads(threads);
  if (static_cast<std::size_t>(t) > nchunks) {
    t = nchunks < 1 ? 1 : static_cast<int>(nchunks);
  }
  return t;
}

std::size_t resolve_grid_chunk(std::size_t count, int threads,
                               std::size_t chunk) {
  if (chunk > 0) return chunk;
  // Legacy layout: one chunk per effective worker.
  const int t = grid_threads(count, threads);
  return (count + static_cast<std::size_t>(t) - 1) /
         static_cast<std::size_t>(t);
}

}  // namespace

std::size_t grid_chunk_count(std::size_t count, int threads,
                             std::size_t chunk) {
  if (count == 0) return 0;
  const std::size_t c = resolve_grid_chunk(count, threads, chunk);
  return (count + c - 1) / c;
}

GridResult parallel_for_grid(std::size_t count, int threads,
                             const ThreadPool::ChunkFn& fn,
                             const GridOptions& opts) {
  GridResult result;
  if (count == 0) return result;
  const std::size_t chunk = resolve_grid_chunk(count, threads, opts.chunk);
  const std::size_t nchunks = (count + chunk - 1) / chunk;
  result.chunks = nchunks;
  result.done.assign(nchunks, 0);

  std::mutex done_mutex;  // serializes on_chunk_done + the shared counters
  std::size_t completed = 0;
  std::size_t skipped = 0;

  // Each worker owns a contiguous span of grid chunks (static assignment,
  // same discipline as run_chunked) and walks it chunk by chunk, checking
  // the skip set and the cancellation token between chunks.
  const ThreadPool::ChunkFn span_fn = [&](int worker, std::size_t cb,
                                          std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      if (opts.skip != nullptr && (*opts.skip)[c] != 0) {
        std::lock_guard<std::mutex> lk(done_mutex);
        result.done[c] = 1;
        ++skipped;
        continue;
      }
      if (opts.cancel != nullptr && opts.cancel->cancelled()) break;
      const std::size_t begin = c * chunk;
      const std::size_t end = std::min(count, begin + chunk);
      fn(worker, begin, end);
      std::lock_guard<std::mutex> lk(done_mutex);
      result.done[c] = 1;
      ++completed;
      if (opts.on_chunk_done) opts.on_chunk_done(c, begin, end);
    }
  };

  const int t = grid_threads(nchunks, threads);
  if (t <= 1) {
    run_chunk_traced(span_fn, 0, 0, nchunks);
  } else {
    ThreadPool pool(t);
    pool.run_chunked(nchunks, span_fn);
  }
  result.completed = completed;
  result.skipped = skipped;
  return result;
}

}  // namespace flopsim::exec
