#include "exec/cancel.hpp"

#include <chrono>
#include <csignal>
#include <string>

namespace flopsim::exec {

namespace {

long long steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<int> g_last_signal{0};

extern "C" void cancel_on_signal(int sig) {
  // Async-signal-safe: lock-free atomic stores only.
  g_last_signal.store(sig, std::memory_order_relaxed);
  global_cancel_token().request(CancelToken::Reason::kSignal);
}

}  // namespace

bool CancelToken::cancelled() const {
  if (flag_.load(std::memory_order_acquire)) return true;
  const long long deadline = deadline_us_.load(std::memory_order_relaxed);
  if (deadline != 0 && steady_now_us() >= deadline) {
    int expected = static_cast<int>(Reason::kNone);
    reason_.compare_exchange_strong(expected,
                                    static_cast<int>(Reason::kTimeBudget),
                                    std::memory_order_relaxed);
    flag_.store(true, std::memory_order_release);
    return true;
  }
  return false;
}

void CancelToken::set_deadline_after(double seconds) {
  if (seconds <= 0.0) {
    deadline_us_.store(0, std::memory_order_relaxed);
    return;
  }
  deadline_us_.store(steady_now_us() +
                         static_cast<long long>(seconds * 1e6),
                     std::memory_order_relaxed);
}

void CancelToken::reset() {
  flag_.store(false, std::memory_order_relaxed);
  reason_.store(static_cast<int>(Reason::kNone), std::memory_order_relaxed);
  deadline_us_.store(0, std::memory_order_relaxed);
}

const char* to_string(CancelToken::Reason r) {
  switch (r) {
    case CancelToken::Reason::kNone: return "none";
    case CancelToken::Reason::kSignal: return "signal";
    case CancelToken::Reason::kTimeBudget: return "time-budget";
    case CancelToken::Reason::kTrialBudget: return "trial-budget";
    case CancelToken::Reason::kConverged: return "converged";
    case CancelToken::Reason::kOther: return "other";
  }
  return "unknown";
}

CancelToken& global_cancel_token() {
  static CancelToken token;
  return token;
}

void install_signal_handlers() {
  std::signal(SIGINT, cancel_on_signal);
  std::signal(SIGTERM, cancel_on_signal);
}

int last_signal() { return g_last_signal.load(std::memory_order_relaxed); }

Interrupted::Interrupted(CancelToken::Reason r)
    : std::runtime_error(std::string("interrupted (") + to_string(r) + ")"),
      reason(r) {}

}  // namespace flopsim::exec
