// Datapath lint: static verification of piece chains, pipeline plans, and
// the declared cost models they carry.
//
// Everything the analysis layers report — the Fig. 2/3 frequency-area
// curves, the Table 1-2 depth selections, the FF-cost accounting — hangs
// off per-piece declarations (`delay_ns`, `live_bits`, `cut_after`, area)
// that every unit hand-writes and nothing else cross-checks. A wrong
// `live_bits` silently skews the area model; a stale `delay_chained_ns`
// quietly shifts the balanced-partition cuts. This engine is the
// SpyGlass-style structural gate real FPGA flows put in front of
// synthesis: every rule produces a Finding with a stable rule ID, a
// severity, and a location, and the zoo-wide sweep (tools/flopsim-lint)
// must come back error-free before a unit ships.
//
// Rule families:
//   DL0xx  structural: delays, chaining declarations, cut legality,
//          areas, names, eval presence
//   DL1xx  lane def-use (inferred via the instrumented SignalSet probe,
//          see probe.hpp): uninitialized reads, dead writes, out-of-range
//          lanes, nondeterministic evals, unreachable result
//   DL2xx  declared live_bits vs. the inferred live lane set at each
//          cuttable boundary (the FF cost the area model consumes)
//   DL3xx  plan-level: stage_begin well-formedness, cut legality,
//          latency agreement, and recomputation cross-checks of
//          evaluate_timing / evaluate_area
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "device/tech.hpp"
#include "rtl/piece.hpp"
#include "rtl/pipeline.hpp"

namespace flopsim::units {
class FpUnit;
class FormatConverter;
}  // namespace flopsim::units

namespace flopsim::lint {

enum class Severity { kNote, kWarning, kError };

const char* to_string(Severity s);

/// One diagnostic. `piece`, `lane` and `boundary` are -1 when the finding
/// is not tied to that kind of location.
struct Finding {
  std::string rule;        ///< stable rule ID, e.g. "DL101"
  Severity severity = Severity::kWarning;
  std::string subject;     ///< unit/chain name, e.g. "fp_add<binary32>/s3"
  int piece = -1;          ///< piece index within the chain
  std::string piece_name;  ///< e.g. "align_l2"
  int lane = -1;           ///< SignalSet lane
  int boundary = -1;       ///< cut boundary (register after piece `boundary`)
  std::string message;
};

struct Report {
  std::vector<Finding> findings;
  /// Abstract-interpretation coverage counters (src/lint/absint.*):
  /// subjects whose chains were fully annotated and analyzed, cut
  /// boundaries with a proven width bound, boundaries where the
  /// probe-vs-absint sandwich collapsed to an exact width, and concrete
  /// values verified to lie inside the abstract state.
  int absint_subjects = 0;
  int absint_boundaries = 0;
  int absint_exact = 0;
  int absint_checks = 0;

  int count(Severity s) const;
  int errors() const { return count(Severity::kError); }
  int warnings() const { return count(Severity::kWarning); }
  bool clean() const { return errors() == 0; }

  void add(Finding f) { findings.push_back(std::move(f)); }
  void merge(Report other);
  /// All findings carrying this rule ID.
  std::vector<Finding> with_rule(const std::string& rule) const;
};

/// Registry entry: the rule's ID, the severity it fires at, and a one-line
/// description (rendered into reports and docs/extending.md's rule table).
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* title;
};

/// Every rule the engine knows, in ID order.
const std::vector<RuleInfo>& rule_registry();

/// Lookup by ID; nullptr for unknown IDs. O(1) after the first call.
const RuleInfo* find_rule(const std::string& id);

/// Finding filter parsed from a --rules= spec: a comma-separated list of
/// rule IDs ("DL201") or family wildcards ("DL4xx", any trailing run of
/// 'x'). Entries prefixed with '-' exclude; the rest form an include
/// allowlist (empty allowlist = include everything not excluded).
struct RuleFilter {
  std::vector<std::string> include;  ///< IDs or family prefixes
  std::vector<std::string> exclude;
  /// Throws std::invalid_argument on an entry matching no known rule.
  static RuleFilter parse(const std::string& spec);
  bool allows(const std::string& rule) const;
  bool empty() const { return include.empty() && exclude.empty(); }
};

/// Drop findings the filter rejects (counters are left untouched).
void apply_rule_filter(Report& report, const RuleFilter& filter);

struct Options {
  /// Stimulus vectors driven through the chain for def-use inference.
  int vectors = 24;
  std::uint64_t seed = 1;
  /// DL201: bits of live_bits underdeclaration tolerated before the
  /// deficit becomes an error. The inferred width is a lower bound built
  /// from observed values, so small deficits are expected noise.
  int live_bits_deficit_tol = 4;
  /// DL202: declared > factor * inferred + slack flags the declaration as
  /// suspiciously oversized (warning).
  double live_bits_excess_factor = 2.0;
  int live_bits_excess_slack = 24;
  /// Include note-severity findings (timing-placeholder pieces etc.).
  bool notes = false;
  /// Run the abstract-interpretation engine (src/lint/absint.*) on fully
  /// annotated chains: DL4xx rules, proven live_bits bounds, and the
  /// tolerance-free DL401 path where the probe-vs-absint sandwich is
  /// exact. Chains with any unannotated piece are skipped either way.
  bool absint = true;
};

/// What the chain promises its environment: which lanes arrive initialized
/// and which lane carries the result out of the final piece. Stimuli are
/// the input bundles driven during def-use inference; only the lanes named
/// in `input_lanes` are taken from them (all others start poisoned).
struct ChainContract {
  std::string name;             ///< subject for findings
  std::vector<int> input_lanes;
  /// Declared bit width of each input lane (parallel to `input_lanes`;
  /// missing entries mean 64). The absint engine seeds its entry state
  /// from these, so tighter contracts prove tighter bounds.
  std::vector<int> input_widths;
  int result_lane = 0;
  std::vector<rtl::SignalSet> stimuli;
};

/// Structural + def-use + live-bits rules over a bare chain. The second
/// overload also hands back the abstract-interpretation results (see
/// lint/absint.hpp) so callers can cross-check other consumers of the
/// chain — lint_unit feeds them to the compiled-backend crosscheck.
struct ChainAbsint;
Report lint_chain(const rtl::PieceChain& chain, const ChainContract& contract,
                  const Options& opts = {});
Report lint_chain(const rtl::PieceChain& chain, const ChainContract& contract,
                  const Options& opts, ChainAbsint* out_absint);

/// Plan-level rules (DL3xx) for a chain/plan pair, including the
/// recomputation cross-checks of evaluate_timing and evaluate_area.
Report lint_plan(const rtl::PieceChain& chain, const rtl::PipelinePlan& plan,
                 const device::TechModel& tech, device::Objective objective,
                 const std::string& subject, const Options& opts = {});

/// The recomputation checks split out so a caller (or a test) can hand in
/// claimed Timing/AreaBreakdown values and have them verified against the
/// chain + plan declarations.
Report check_timing_claim(const rtl::PieceChain& chain,
                          const rtl::PipelinePlan& plan,
                          const device::TechModel& tech,
                          const rtl::Timing& claimed,
                          const std::string& subject);
Report check_area_claim(const rtl::PieceChain& chain,
                        const rtl::PipelinePlan& plan,
                        const rtl::AreaBreakdown& claimed,
                        const std::string& subject);
/// DL303/DL305: realized depth vs. the clamped request, and declared
/// latency vs. the plan's stage count.
Report check_depth_claim(int realized, int requested, int max_stages,
                         int latency, int plan_stages,
                         const std::string& subject);

/// Full lint of a generated arithmetic unit: chain rules with the shared
/// lane contract and a campaign-workload stimulus, plus the plan rules at
/// the unit's realized depth.
Report lint_unit(const units::FpUnit& unit, const Options& opts = {});

/// Full lint of a format-converter core.
Report lint_converter(const units::FormatConverter& cvt,
                      const Options& opts = {});

}  // namespace flopsim::lint
