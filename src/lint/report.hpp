// Rendering of lint Reports: compiler-style text diagnostics and a
// JSON-lines form (one finding object per line, a trailing summary line)
// for CI artifacts. Both render findings in their stored order — the
// engine emits rules deterministically, so the output is golden-testable.
#pragma once

#include <ostream>
#include <string>

#include "lint/lint.hpp"

namespace flopsim::lint {

/// Compiler-style lines:
///   fp_add<binary32>/s3: piece 4 'align_l2' lane 9: error [DL101] reads ...
/// followed by a one-line summary (always printed, even when clean).
void write_text(std::ostream& os, const Report& report,
                bool include_notes = false);

/// One JSON object per finding:
///   {"rule": "DL101", "severity": "error", "subject": ..., "piece": 4,
///    "piece_name": "align_l2", "lane": 9, "boundary": -1, "message": ...}
/// then a summary object {"summary": true, "findings": N, "errors": E,
/// "warnings": W}. Returns the number of lines written.
int write_jsonl(std::ostream& os, const Report& report,
                bool include_notes = false);

/// The text form of one finding (no trailing newline).
std::string format_finding(const Finding& f);

}  // namespace flopsim::lint
