#include "lint/absint.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "lint/probe.hpp"

namespace flopsim::lint {

using fp::i64;
using fp::u64;
using rtl::kMaxSignals;
using rtl::SemOp;
using Kind = rtl::SemOp::Kind;

namespace {

using i128 = __int128;

/// Effective-width bound of the largest value in [0, hi] (hi >= 0).
int width_of_nonneg(i64 hi) {
  return hi <= 0 ? (hi == 0 ? 0 : 64) : fp::msb_index64(static_cast<u64>(hi)) + 1;
}

/// Clamp an i128 back into the i64 interval domain. Wrapping 64-bit
/// arithmetic can leave the representable range, in which case nothing
/// about the bit pattern's signed reading survives: full interval.
bool clamp128(i128 lo, i128 hi, i64& out_lo, i64& out_hi) {
  if (lo < INT64_MIN || hi > INT64_MAX) return false;
  out_lo = static_cast<i64>(lo);
  out_hi = static_cast<i64>(hi);
  return true;
}

AbsVal top_val() {
  AbsVal v;
  v.defined = true;
  return v;
}

}  // namespace

AbsVal AbsVal::constant(u64 v) {
  AbsVal r;
  r.kmask = ~u64{0};
  r.kval = v;
  r.lo = static_cast<i64>(v);
  r.hi = static_cast<i64>(v);
  r.defined = true;
  return r;
}

AbsVal AbsVal::any(int width) {
  AbsVal r;
  r.defined = true;
  if (width >= 64) return r;  // full top
  if (width < 0) width = 0;
  r.kmask = ~fp::mask64(width);
  r.kval = 0;
  r.lo = 0;
  r.hi = static_cast<i64>(fp::mask64(width));
  return r;
}

AbsVal AbsVal::any_signed(int width) {
  AbsVal r;
  r.defined = true;
  if (width >= 64) return r;
  if (width <= 0) return constant(0);
  // Values in [-2^(w-1), 2^(w-1) - 1]; the sign run above bit w-1 is one
  // of two patterns, so no individual high bit is known.
  r.lo = -(i64{1} << (width - 1));
  r.hi = (i64{1} << (width - 1)) - 1;
  return r;
}

bool AbsVal::contains(u64 v) const {
  if (!defined) return false;
  if ((v & kmask) != kval) return false;
  const i64 s = static_cast<i64>(v);
  return s >= lo && s <= hi;
}

u64 AbsVal::possible_bits() const {
  if (!defined) return 0;
  u64 pb = ~kmask | kval;
  if (lo >= 0) pb &= fp::mask64(width_of_nonneg(hi));
  return pb;
}

int AbsVal::width_bound() const {
  if (!defined) return 0;
  // Interval endpoints dominate: effective_width is monotone away from
  // zero in both directions, so the max over [lo, hi] is at an endpoint.
  int w = std::max(effective_width(static_cast<u64>(lo)),
                   effective_width(static_cast<u64>(hi)));
  // Known-zero top bits tighten the unsigned reading.
  if ((kmask >> 63) & 1) {
    if ((kval >> 63) == 0) {
      const u64 umax = kval | ~kmask;
      w = std::min(w, umax == 0 ? 0 : fp::msb_index64(umax) + 1);
    }
  }
  return w;
}

void AbsVal::canonicalize() {
  if (!defined) return;
  kval &= kmask;
  // Interval from known bits, when the sign bit is decided (the unsigned
  // order then agrees with the signed order within the set).
  if ((kmask >> 63) & 1) {
    const i64 umin = static_cast<i64>(kval);
    const i64 umax = static_cast<i64>(kval | ~kmask);
    lo = std::max(lo, umin);
    hi = std::min(hi, umax);
  }
  // Known bits from a non-negative interval: everything above hi's msb is
  // zero.
  if (lo >= 0) {
    const u64 zmask = ~fp::mask64(width_of_nonneg(hi));
    kmask |= zmask;
    kval &= ~zmask;
  }
  if (lo == hi) {
    kmask = ~u64{0};
    kval = static_cast<u64>(lo);
  }
  if (lo > hi) hi = lo;  // infeasible guard path; stay defined and sound
}

AbsVal absval_join(const AbsVal& a, const AbsVal& b) {
  if (!a.defined) return b;
  if (!b.defined) return a;
  AbsVal r;
  r.defined = true;
  r.kmask = a.kmask & b.kmask & ~(a.kval ^ b.kval);
  r.kval = a.kval & r.kmask;
  r.lo = std::min(a.lo, b.lo);
  r.hi = std::max(a.hi, b.hi);
  r.canonicalize();
  return r;
}

AbsVal absval_widen(const AbsVal& prev, const AbsVal& next) {
  if (!prev.defined) return next;
  if (!next.defined) return prev;
  AbsVal r = absval_join(prev, next);
  // Interval thresholds: jump to the next rung instead of creeping.
  static constexpr i64 kLoRungs[] = {0, -1, -(i64{1} << 8), -(i64{1} << 16),
                                     -(i64{1} << 32), INT64_MIN};
  static constexpr i64 kHiRungs[] = {0, 1, (i64{1} << 8), (i64{1} << 16),
                                     (i64{1} << 32), INT64_MAX};
  if (r.lo < prev.lo) {
    for (i64 rung : kLoRungs) {
      if (rung <= r.lo) {
        r.lo = rung;
        break;
      }
    }
  }
  if (r.hi > prev.hi) {
    for (i64 rung : kHiRungs) {
      if (rung >= r.hi) {
        r.hi = rung;
        break;
      }
    }
  }
  r.canonicalize();
  return r;
}

AbsState absstate_join(const AbsState& a, const AbsState& b) {
  if (!a.reachable) return b;
  if (!b.reachable) return a;
  AbsState r;
  r.reachable = true;
  for (int l = 0; l < kMaxSignals; ++l) {
    const auto idx = static_cast<std::size_t>(l);
    r.lane[idx] = absval_join(a.lane[idx], b.lane[idx]);
  }
  return r;
}

namespace {

AbsState absstate_widen(const AbsState& prev, const AbsState& next) {
  if (!prev.reachable) return next;
  if (!next.reachable) return prev;
  AbsState r;
  r.reachable = true;
  for (int l = 0; l < kMaxSignals; ++l) {
    const auto idx = static_cast<std::size_t>(l);
    r.lane[idx] = absval_widen(prev.lane[idx], next.lane[idx]);
  }
  return r;
}

bool absstate_equal(const AbsState& a, const AbsState& b) {
  if (a.reachable != b.reachable) return false;
  for (int l = 0; l < kMaxSignals; ++l) {
    const auto idx = static_cast<std::size_t>(l);
    if (!(a.lane[idx] == b.lane[idx])) return false;
  }
  return true;
}

AbsVal lane_or_top(const AbsState& s, int lane) {
  if (lane < 0 || lane >= kMaxSignals) return top_val();
  const AbsVal& v = s.lane[static_cast<std::size_t>(lane)];
  return v.defined ? v : top_val();
}

/// Second operand of a binary op: lane b, or an immediate constant.
AbsVal operand_b(const SemOp& op, const AbsState& s, bool arith) {
  if (op.b >= 0) return lane_or_top(s, op.b);
  return AbsVal::constant(arith ? op.imm2 : op.imm);
}

/// Known-bits ripple addition/subtraction: sum bits are known from the
/// LSB up while both operand bits and the incoming carry are known.
void known_bits_addsub(const AbsVal& a, const AbsVal& b, bool subtract,
                       AbsVal& r) {
  const u64 bval = subtract ? ~b.kval : b.kval;
  u64 carry = subtract ? 1 : 0;
  bool carry_known = true;
  u64 kmask = 0;
  u64 kval = 0;
  for (int bit = 0; bit < 64 && carry_known; ++bit) {
    const u64 m = u64{1} << bit;
    if (!(a.kmask & m) || !(b.kmask & m)) break;
    const u64 ab = (a.kval & m) != 0 ? 1 : 0;
    const u64 bb = (bval & m) != 0 ? 1 : 0;
    const u64 sum = ab + bb + carry;
    kmask |= m;
    if ((sum & 1) != 0) kval |= m;
    carry = sum >> 1;
  }
  r.kmask |= kmask;
  r.kval = (r.kval & ~kmask) | kval;
}

/// Truncate a result to a physical width (models the hardware register /
/// adder slice). Returns true when a value above the width was reachable
/// (the carry/overflow the hardware would drop).
bool truncate_to_width(AbsVal& r, int width) {
  if (width >= 64 || width <= 0) return false;
  const u64 mask = fp::mask64(width);
  const bool overflow_reachable =
      r.lo < 0 || static_cast<u64>(r.hi) > mask || (r.possible_bits() & ~mask) != 0;
  if (overflow_reachable) {
    // Post-truncation nothing survives of the interval.
    AbsVal t;
    t.defined = true;
    t.kmask = (r.kmask & mask) | ~mask;
    t.kval = r.kval & mask;
    t.lo = 0;
    t.hi = static_cast<i64>(mask);
    r = t;
    r.canonicalize();
  }
  return overflow_reachable;
}

struct TransferNotes {
  bool carry_truncated = false;  ///< a kAdd/kSub/kMul overflowed its width
  bool fired_known = false;      ///< guard was decidable
  bool fired = true;             ///< op executed (when guard decidable)
};

/// Evaluate an op's guard against the state: 1 = executes, 0 = skipped,
/// -1 = undecidable.
int guard_decides(const SemOp& op, const AbsState& s) {
  if (op.cond < 0) return 1;
  const AbsVal c = lane_or_top(s, op.cond);
  const u64 m = u64{1} << op.cond_bit;
  if (!(c.kmask & m)) return -1;
  const bool set = (c.kval & m) != 0;
  return (set != op.cond_neg) ? 1 : 0;
}

void transfer_ex(const SemOp& op, AbsState& s, TransferNotes* notes) {
  if (op.kind == Kind::kNop || op.kind == Kind::kRead ||
      op.kind == Kind::kFlags) {
    return;
  }
  const int fire = guard_decides(op, s);
  if (notes != nullptr) {
    notes->fired_known = fire >= 0;
    notes->fired = fire != 0;
  }
  if (fire == 0) return;
  if (op.dst < 0 || op.dst >= kMaxSignals) return;
  const auto dst = static_cast<std::size_t>(op.dst);

  AbsVal r = top_val();
  switch (op.kind) {
    case Kind::kConst:
      r = AbsVal::constant(op.imm);
      break;
    case Kind::kCopy:
      r = lane_or_top(s, op.a);
      break;
    case Kind::kHavoc:
      r = AbsVal::any(static_cast<int>(op.imm));
      break;
    case Kind::kHavocSigned:
      r = AbsVal::any_signed(static_cast<int>(op.imm));
      break;
    case Kind::kAnd: {
      const AbsVal a = lane_or_top(s, op.a);
      const AbsVal b = operand_b(op, s, /*arith=*/false);
      const u64 k0 = (a.kmask & ~a.kval) | (b.kmask & ~b.kval);
      const u64 k1 = (a.kmask & a.kval) & (b.kmask & b.kval);
      r.kmask = k0 | k1;
      r.kval = k1;
      if (a.lo >= 0 || b.lo >= 0) {
        r.lo = 0;
        r.hi = a.lo >= 0 && b.lo >= 0 ? std::min(a.hi, b.hi)
                                      : (a.lo >= 0 ? a.hi : b.hi);
      }
      r.canonicalize();
      break;
    }
    case Kind::kOr: {
      const AbsVal a = lane_or_top(s, op.a);
      const AbsVal b = operand_b(op, s, /*arith=*/false);
      const u64 k1 = (a.kmask & a.kval) | (b.kmask & b.kval);
      const u64 k0 = (a.kmask & ~a.kval) & (b.kmask & ~b.kval);
      r.kmask = k0 | k1;
      r.kval = k1;
      if (a.lo >= 0 && b.lo >= 0) {
        r.lo = std::max(a.lo, b.lo);
        r.hi = static_cast<i64>(
            fp::mask64(std::max(width_of_nonneg(a.hi), width_of_nonneg(b.hi))));
      }
      r.canonicalize();
      break;
    }
    case Kind::kXor: {
      const AbsVal a = lane_or_top(s, op.a);
      const AbsVal b = operand_b(op, s, /*arith=*/false);
      r.kmask = a.kmask & b.kmask;
      r.kval = (a.kval ^ b.kval) & r.kmask;
      if (a.lo >= 0 && b.lo >= 0) {
        r.lo = 0;
        r.hi = static_cast<i64>(
            fp::mask64(std::max(width_of_nonneg(a.hi), width_of_nonneg(b.hi))));
      }
      r.canonicalize();
      break;
    }
    case Kind::kShlImm: {
      const AbsVal a = lane_or_top(s, op.a);
      const int d = static_cast<int>(op.imm) & 63;
      r.kmask = (a.kmask << d) | fp::mask64(d);
      r.kval = a.kval << d;
      i64 nlo = 0;
      i64 nhi = 0;
      if (a.lo >= 0 &&
          clamp128(static_cast<i128>(a.lo) << d, static_cast<i128>(a.hi) << d,
                   nlo, nhi)) {
        r.lo = nlo;
        r.hi = nhi;
      }
      r.canonicalize();
      break;
    }
    case Kind::kShrImm:
    case Kind::kShrJamImm: {
      const AbsVal a = lane_or_top(s, op.a);
      const int d = static_cast<int>(op.imm) & 63;
      r.kmask = (a.kmask >> d) | ~fp::mask64(64 - d);
      r.kval = a.kval >> d;
      if (a.lo >= 0) {
        r.lo = a.lo >> d;
        r.hi = a.hi >> d;
      } else {
        // Logical shift of a possibly-negative pattern: high bits unknown
        // beyond the shifted-in zeros.
        r.lo = 0;
        r.hi = static_cast<i64>(fp::mask64(64 - d));
      }
      if (op.kind == Kind::kShrJamImm && d > 0) {
        const u64 out_bits = fp::mask64(d);
        if ((a.kmask & out_bits) == out_bits) {
          const u64 jam = (a.kval & out_bits) != 0 ? 1 : 0;
          r.kval = (r.kval & ~u64{1}) | ((r.kval | jam) & 1);
          if (jam != 0 && r.hi >= 0) r.hi |= 1;
        } else {
          r.kmask &= ~u64{1};
          r.kval &= ~u64{1};
          if (r.hi >= 0) r.hi |= 1;
        }
      }
      r.canonicalize();
      break;
    }
    case Kind::kShlVar: {
      const AbsVal a = lane_or_top(s, op.a);
      const AbsVal d = lane_or_top(s, op.b);
      const int dmax = static_cast<int>(
          std::min<u64>(op.imm, d.lo >= 0 ? static_cast<u64>(d.hi) : op.imm));
      if (a.lo >= 0) {
        r = AbsVal::any(std::min(64, width_of_nonneg(a.hi) + dmax));
        r.lo = 0;
      }
      r.canonicalize();
      break;
    }
    case Kind::kShrVar:
    case Kind::kShrJamVar: {
      const AbsVal a = lane_or_top(s, op.a);
      if (a.lo >= 0) {
        // A (jamming) right shift never increases the value.
        r.lo = 0;
        r.hi = a.hi;
      }
      r.canonicalize();
      break;
    }
    case Kind::kAdd:
    case Kind::kSub: {
      const AbsVal a = lane_or_top(s, op.a);
      const AbsVal b = operand_b(op, s, /*arith=*/true);
      const bool sub = op.kind == Kind::kSub;
      i64 nlo = 0;
      i64 nhi = 0;
      const i128 slo = sub ? static_cast<i128>(a.lo) - b.hi
                           : static_cast<i128>(a.lo) + b.lo;
      const i128 shi = sub ? static_cast<i128>(a.hi) - b.lo
                           : static_cast<i128>(a.hi) + b.hi;
      if (clamp128(slo, shi, nlo, nhi)) {
        r.lo = nlo;
        r.hi = nhi;
      }
      known_bits_addsub(a, b, sub, r);
      r.canonicalize();
      const bool truncated = truncate_to_width(r, static_cast<int>(op.imm));
      if (truncated && notes != nullptr) notes->carry_truncated = true;
      break;
    }
    case Kind::kMul: {
      const AbsVal a = lane_or_top(s, op.a);
      const AbsVal b = operand_b(op, s, /*arith=*/true);
      if (a.is_constant() && b.is_constant()) {
        r = AbsVal::constant(a.constant_value() * b.constant_value());
      } else if (a.lo >= 0 && b.lo >= 0) {
        i64 nlo = 0;
        i64 nhi = 0;
        if (clamp128(static_cast<i128>(a.lo) * b.lo,
                     static_cast<i128>(a.hi) * b.hi, nlo, nhi)) {
          r.lo = nlo;
          r.hi = nhi;
        } else {
          // Partial-product width bound: wa + wb bits.
          const int w = width_of_nonneg(a.hi) + width_of_nonneg(b.hi);
          r = AbsVal::any(std::min(64, w));
        }
      }
      r.canonicalize();
      const bool truncated = truncate_to_width(r, static_cast<int>(op.imm));
      if (truncated && notes != nullptr) notes->carry_truncated = true;
      break;
    }
    case Kind::kSelect: {
      const int sel = guard_decides(
          [&] {
            SemOp g = op;
            g.cond_neg = false;
            return g;
          }(),
          s);
      if (sel == 1) {
        r = lane_or_top(s, op.a);
      } else if (sel == 0) {
        r = lane_or_top(s, op.b);
      } else {
        r = absval_join(lane_or_top(s, op.a), lane_or_top(s, op.b));
      }
      break;
    }
    case Kind::kCmp:
      r = AbsVal::any(1);
      break;
    case Kind::kNop:
    case Kind::kRead:
    case Kind::kFlags:
      break;
  }

  if (fire < 0) {
    // Guard undecided: the write may not happen.
    r = absval_join(r, s.lane[dst]);
  }
  s.lane[dst] = r;
}

}  // namespace

void absint_transfer(const SemOp& op, AbsState& state) {
  transfer_ex(op, state, nullptr);
}

SolveResult absint_solve(const AbsProgram& program, const AbsState& entry,
                         int widen_after) {
  const std::size_t n = program.nodes.size();
  SolveResult res;
  res.in.assign(n, AbsState{});
  res.out.assign(n, AbsState{});
  std::vector<int> joins(n, 0);
  std::vector<char> queued(n, 0);
  std::deque<int> worklist;
  if (program.entry >= 0 && program.entry < static_cast<int>(n)) {
    res.in[static_cast<std::size_t>(program.entry)] = entry;
    res.in[static_cast<std::size_t>(program.entry)].reachable = true;
    worklist.push_back(program.entry);
    queued[static_cast<std::size_t>(program.entry)] = 1;
  }
  // Far above anything a real chain needs; widening guarantees each lane
  // climbs a finite lattice, so this cap only guards a broken caller.
  constexpr int kMaxIterations = 100000;
  while (!worklist.empty() && res.iterations < kMaxIterations) {
    const int i = worklist.front();
    worklist.pop_front();
    queued[static_cast<std::size_t>(i)] = 0;
    ++res.iterations;
    const auto idx = static_cast<std::size_t>(i);
    AbsState out = res.in[idx];
    if (out.reachable) {
      for (const SemOp& op : program.nodes[idx].ops) {
        transfer_ex(op, out, nullptr);
      }
    }
    res.out[idx] = out;
    if (!out.reachable) continue;
    for (int succ : program.nodes[idx].succ) {
      if (succ < 0 || succ >= static_cast<int>(n)) continue;
      const auto sidx = static_cast<std::size_t>(succ);
      AbsState next = absstate_join(res.in[sidx], out);
      if (joins[sidx] >= widen_after) {
        next = absstate_widen(res.in[sidx], next);
      }
      if (!absstate_equal(next, res.in[sidx])) {
        res.in[sidx] = next;
        ++joins[sidx];
        if (queued[sidx] == 0) {
          worklist.push_back(succ);
          queued[sidx] = 1;
        }
      }
    }
  }
  return res;
}

namespace {

/// Backward demanded-bits transfer for one op. `demand` maps lanes to the
/// bits downstream can observe.
void demand_transfer(const SemOp& op, std::array<u64, kMaxSignals>& demand) {
  const auto D = [&demand](int lane) -> u64& {
    static u64 scratch = 0;
    if (lane < 0 || lane >= kMaxSignals) {
      scratch = 0;
      return scratch;
    }
    return demand[static_cast<std::size_t>(lane)];
  };
  if (op.kind == Kind::kNop) return;
  if (op.kind == Kind::kRead) {
    D(op.a) = ~u64{0};
    return;
  }
  if (op.kind == Kind::kFlags) {
    if (op.a >= 0) D(op.a) = ~u64{0};
    return;
  }
  const u64 d = D(op.dst);
  const bool conditional = op.cond >= 0;
  if (!conditional) D(op.dst) = 0;  // unconditional write kills the demand
  if (d == 0) return;
  if (conditional) D(op.cond) |= u64{1} << op.cond_bit;
  const u64 all_low = d == 0 ? 0 : fp::mask64(fp::msb_index64(d) + 1);
  switch (op.kind) {
    case Kind::kConst:
    case Kind::kHavoc:
    case Kind::kHavocSigned:
      break;
    case Kind::kCopy:
      D(op.a) |= d;
      break;
    case Kind::kAnd:
      D(op.a) |= op.b >= 0 ? d : (d & op.imm);
      if (op.b >= 0) D(op.b) |= d;
      break;
    case Kind::kOr:
    case Kind::kXor:
      D(op.a) |= d;
      if (op.b >= 0) D(op.b) |= d;
      break;
    case Kind::kShlImm:
      D(op.a) |= d >> (op.imm & 63);
      break;
    case Kind::kShrImm:
      D(op.a) |= d << (op.imm & 63);
      break;
    case Kind::kShrJamImm:
      D(op.a) |= (d << (op.imm & 63)) |
                 ((d & 1) != 0 ? fp::mask64(static_cast<int>(op.imm & 63)) : 0);
      break;
    case Kind::kShlVar:
    case Kind::kShrVar:
    case Kind::kShrJamVar:
      // Unknown distance smears any demanded bit across the lane.
      D(op.a) |= ~u64{0};
      D(op.b) |= fp::mask64(7);
      break;
    case Kind::kAdd:
    case Kind::kSub:
    case Kind::kMul:
      // Carries: every source bit at or below the highest demanded bit.
      D(op.a) |= all_low;
      if (op.b >= 0) D(op.b) |= all_low;
      break;
    case Kind::kSelect:
      D(op.a) |= d;
      D(op.b) |= d;
      D(op.cond) |= u64{1} << op.cond_bit;
      break;
    case Kind::kCmp:
      D(op.a) |= ~u64{0};
      if (op.b >= 0) D(op.b) |= ~u64{0};
      break;
    case Kind::kNop:
    case Kind::kRead:
    case Kind::kFlags:
      break;
  }
}

Finding absint_finding(const char* rule, const std::string& subject,
                       const rtl::PieceChain& chain, int piece,
                       std::string message) {
  const RuleInfo* info = find_rule(rule);
  Finding f;
  f.rule = rule;
  f.severity = info != nullptr ? info->severity : Severity::kError;
  f.subject = subject;
  f.piece = piece;
  if (piece >= 0 && piece < static_cast<int>(chain.size())) {
    f.piece_name = chain[static_cast<std::size_t>(piece)].name;
  }
  f.message = std::move(message);
  return f;
}

/// Width witness contributed by one concrete value under a demand mask:
/// the sign-aware effective width, never wider than the value itself (a
/// demand mask can strip a sign run but never adds storage cost).
int masked_witness_width(u64 value, u64 demand) {
  return std::min(effective_width(value), effective_width(value & demand));
}

}  // namespace

ChainAbsint analyze_chain(const rtl::PieceChain& chain,
                          const ChainContract& contract, const Options& opts) {
  ChainAbsint res;
  const std::size_t n = chain.size();
  res.piece_dead.assign(n, false);
  res.piece_constant.assign(n, false);
  res.piece_unreachable.assign(n, false);
  if (n == 0) return res;
  res.annotated =
      std::all_of(chain.begin(), chain.end(),
                  [](const rtl::Piece& p) { return !p.sem.empty(); });
  if (!res.annotated || contract.stimuli.empty()) return res;
  const std::string& subject = contract.name;

  // ---- forward fixpoint over the linear chain graph -----------------------
  AbsProgram program;
  program.nodes.resize(n);
  for (std::size_t p = 0; p < n; ++p) {
    program.nodes[p].ops = chain[p].sem;
    if (p + 1 < n) program.nodes[p].succ.push_back(static_cast<int>(p + 1));
  }
  AbsState entry;
  entry.reachable = true;
  for (std::size_t i = 0; i < contract.input_lanes.size(); ++i) {
    const int lane = contract.input_lanes[i];
    if (lane < 0 || lane >= kMaxSignals) continue;
    const int width = i < contract.input_widths.size()
                          ? contract.input_widths[i]
                          : 64;
    entry.lane[static_cast<std::size_t>(lane)] = AbsVal::any(width);
  }
  const SolveResult solved = absint_solve(program, entry);
  res.piece_out = solved.out;

  // ---- per-op reachability + carry-truncation findings --------------------
  for (std::size_t p = 0; p < n; ++p) {
    AbsState s = solved.in[p];
    bool any_semantic = false;
    bool any_enabled = false;
    int op_index = 0;
    for (const SemOp& op : chain[p].sem) {
      TransferNotes notes;
      transfer_ex(op, s, &notes);
      const bool semantic = op.kind != Kind::kNop && op.kind != Kind::kRead &&
                            op.kind != Kind::kFlags;
      if (semantic) {
        any_semantic = true;
        if (!notes.fired_known || notes.fired) any_enabled = true;
        if (notes.fired_known && !notes.fired && op.cond >= 0) {
          // Individually disabled ops are only reported when the whole
          // piece is dead code; a piece mixing live and provably-disabled
          // ops is normal mux structure.
        }
        if (notes.carry_truncated) {
          std::ostringstream msg;
          msg << "sem op " << op_index << " ("
              << (op.kind == Kind::kMul ? "mul" : "add/sub")
              << ") can overflow its declared " << op.imm
              << "-bit physical width: the carry/overflow out of lane "
              << static_cast<int>(op.dst)
              << " is reachable and truncated";
          Finding f =
              absint_finding("DL405", subject, chain, static_cast<int>(p),
                             msg.str());
          f.lane = op.dst;
          res.findings.add(f);
        }
      }
      ++op_index;
    }
    if (any_semantic && !any_enabled) {
      res.piece_unreachable[p] = true;
      res.findings.add(absint_finding(
          "DL404", subject, chain, static_cast<int>(p),
          "every semantic op is provably disabled by its guard: the piece "
          "is unreachable dead code"));
    }
  }

  // ---- backward demanded bits --------------------------------------------
  std::vector<std::array<u64, kMaxSignals>> boundary_demand(n);
  std::array<u64, kMaxSignals> demand{};
  if (contract.result_lane >= 0 && contract.result_lane < kMaxSignals) {
    demand[static_cast<std::size_t>(contract.result_lane)] = ~u64{0};
  }
  for (std::size_t rp = n; rp-- > 0;) {
    boundary_demand[rp] = demand;
    const rtl::SemProgram& ops = chain[rp].sem;
    for (std::size_t oi = ops.size(); oi-- > 0;) {
      demand_transfer(ops[oi], demand);
    }
  }

  // ---- piece-level proofs --------------------------------------------------
  for (std::size_t p = 0; p < n; ++p) {
    bool writes = false;
    bool writes_flags = false;
    bool all_dead = true;
    bool all_const = true;
    bool all_unconditional = true;
    for (const SemOp& op : chain[p].sem) {
      if (op.kind == Kind::kFlags) writes_flags = true;
      if (op.kind == Kind::kNop || op.kind == Kind::kRead ||
          op.kind == Kind::kFlags || op.dst < 0 || op.dst >= kMaxSignals) {
        continue;
      }
      writes = true;
      if (op.cond >= 0) all_unconditional = false;
      const auto dst = static_cast<std::size_t>(op.dst);
      if (boundary_demand[p][dst] != 0) all_dead = false;
      if (!solved.out[p].lane[dst].is_constant()) all_const = false;
    }
    res.piece_dead[p] = writes && !writes_flags && all_dead;
    res.piece_constant[p] =
        writes && !writes_flags && all_const && all_unconditional;
  }

  // ---- concrete replay: containment self-check + witness widths -----------
  std::array<bool, kMaxSignals> is_input{};
  for (int l : contract.input_lanes) {
    if (l >= 0 && l < kMaxSignals) is_input[static_cast<std::size_t>(l)] = true;
  }
  std::vector<std::array<int, kMaxSignals>> witness(n, std::array<int, kMaxSignals>{});
  std::vector<std::array<bool, kMaxSignals>> seen(
      n, std::array<bool, kMaxSignals>{});
  int containment_errors = 0;
  for (std::size_t v = 0; v < contract.stimuli.size(); ++v) {
    rtl::SignalSet state;
    for (int l = 0; l < kMaxSignals; ++l) {
      // The probe's poison pattern, so conditional behavior matches what
      // the def-use inference observed.
      state.lane[static_cast<std::size_t>(l)] =
          u64{0x9E3779B97F4A7C15} * static_cast<u64>(l + 3) ^
          (opts.seed + 0xD1B54A32D192ED03 * v);
    }
    std::array<bool, kMaxSignals> defined = is_input;
    for (int l : contract.input_lanes) {
      if (l >= 0 && l < kMaxSignals) {
        state.lane[static_cast<std::size_t>(l)] =
            contract.stimuli[v].lane[static_cast<std::size_t>(l)];
      }
    }
    state.valid = true;
    state.flags = 0;
    for (std::size_t p = 0; p < n; ++p) {
      const rtl::SignalSet pre = state;
      chain[p].eval(state);
      for (int l = 0; l < kMaxSignals; ++l) {
        const auto idx = static_cast<std::size_t>(l);
        if (state.lane[idx] != pre.lane[idx]) defined[idx] = true;
        if (!defined[idx]) continue;
        const u64 value = state.lane[idx];
        ++res.containment_checks;
        const AbsVal& av = solved.out[p].lane[idx];
        if (!av.contains(value) && containment_errors < 8) {
          ++containment_errors;
          std::ostringstream msg;
          msg << "stimulus " << v << " left lane " << l << " = 0x" << std::hex
              << value << std::dec
              << " outside the abstract state (known-bits mask 0x" << std::hex
              << av.kmask << " value 0x" << av.kval << std::dec
              << ", interval [" << av.lo << ", " << av.hi << "]"
              << (av.defined ? "" : ", undefined")
              << "): the piece's sem annotation under-approximates its eval";
          Finding f = absint_finding("DL400", subject, chain,
                                     static_cast<int>(p), msg.str());
          f.lane = l;
          res.findings.add(f);
        }
        seen[p][idx] = true;
        witness[p][idx] = std::max(
            witness[p][idx],
            masked_witness_width(value, boundary_demand[p][idx]));
      }
    }
  }

  // ---- boundary summaries --------------------------------------------------
  for (std::size_t b = 0; b < n; ++b) {
    const bool final_boundary = b + 1 == n;
    if (!final_boundary && !chain[b].cut_after) continue;
    BoundaryBounds bb;
    bb.boundary = static_cast<int>(b);
    bb.final_boundary = final_boundary;
    for (int l = 0; l < kMaxSignals; ++l) {
      const auto idx = static_cast<std::size_t>(l);
      const AbsVal& av = solved.out[b].lane[idx];
      if (!av.defined) continue;
      const u64 d = final_boundary
                        ? (l == contract.result_lane ? ~u64{0} : 0)
                        : boundary_demand[b][idx];
      if (d == 0) {
        // Defined but undemanded: recorded so DL403 can name it, with no
        // width contribution.
        if (!final_boundary) {
          LaneBound lb;
          lb.lane = l;
          lb.demand = 0;
          bb.lanes.push_back(lb);
        }
        continue;
      }
      LaneBound lb;
      lb.lane = l;
      lb.demand = d;
      // possible_bits is a bit-set, not a value: its width is the unsigned
      // msb reading (the signed effective_width of an all-ones mask would
      // collapse to 1).
      const u64 pb = av.possible_bits() & d;
      lb.upper = std::min(av.width_bound(),
                          pb == 0 ? 0 : fp::msb_index64(pb) + 1);
      lb.lower = seen[b][idx] ? std::min(witness[b][idx], lb.upper) : 0;
      lb.constant = av.is_constant();
      lb.constant_value = av.constant_value();
      bb.upper += lb.upper;
      bb.lower += lb.lower;
      bb.lanes.push_back(lb);
    }
    res.boundaries.push_back(std::move(bb));
  }
  return res;
}

Report crosscheck_compiled(const rtl::PieceChain& chain,
                           const ChainAbsint& absint,
                           const std::vector<int>& disposition,
                           const std::string& subject) {
  Report report;
  if (!absint.annotated) return report;
  const std::size_t n =
      std::min(chain.size(), disposition.size());
  for (std::size_t p = 0; p < n; ++p) {
    const bool has_writes = std::any_of(
        chain[p].sem.begin(), chain[p].sem.end(), [](const SemOp& op) {
          return op.kind != Kind::kNop && op.kind != Kind::kRead &&
                 op.kind != Kind::kFlags && op.dst >= 0;
        });
    const int disp = disposition[p];  // 0 kept / 1 folded / 2 pruned
    if (disp == 0 && absint.piece_constant[p] && !absint.piece_dead[p]) {
      report.add(absint_finding(
          "DL402", subject, chain, static_cast<int>(p),
          "every written lane is proven constant, but the compiled backend "
          "keeps the piece as a call op (missed constant fold)"));
    }
    if (disp == 0 && absint.piece_dead[p]) {
      report.add(absint_finding(
          "DL403", subject, chain, static_cast<int>(p),
          "no written bit is ever demanded downstream, but the compiled "
          "backend keeps the piece (missed dead-piece prune)"));
    }
    if (disp == 2 && has_writes && !absint.piece_dead[p]) {
      report.add(absint_finding(
          "DL404", subject, chain, static_cast<int>(p),
          "the compiled backend pruned this piece on observational evidence, "
          "but the sem annotations still demand one of its writes — pruning "
          "leans on the stimulus battery here, not on a proof"));
    }
  }
  return report;
}

}  // namespace flopsim::lint
