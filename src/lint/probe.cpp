#include "lint/probe.hpp"

#include <algorithm>
#include <set>

#include "fp/bits.hpp"

namespace flopsim::lint {
namespace {

using fp::u64;
using rtl::kMaxSignals;
using rtl::SignalSet;

/// Records the lanes one eval touches, with out-of-range capture.
class AccessRecorder final : public rtl::LaneAccessListener {
 public:
  void on_access(int lane, bool mutable_access) override {
    any_ = true;
    if (lane < 0 || lane >= kMaxSignals) {
      out_of_range_.insert(lane);
      return;
    }
    (mutable_access ? mutable_ : const_)[static_cast<std::size_t>(lane)] =
        true;
  }

  void reset() {
    mutable_.fill(false);
    const_.fill(false);
    out_of_range_.clear();
    any_ = false;
  }

  const std::array<bool, kMaxSignals>& mutable_accessed() const {
    return mutable_;
  }
  const std::array<bool, kMaxSignals>& const_accessed() const {
    return const_;
  }
  const std::set<int>& out_of_range() const { return out_of_range_; }
  bool any() const { return any_; }

 private:
  std::array<bool, kMaxSignals> mutable_{};
  std::array<bool, kMaxSignals> const_{};
  std::set<int> out_of_range_;
  bool any_ = false;
};

bool states_equal(const SignalSet& a, const SignalSet& b) {
  return a.lane == b.lane && a.valid == b.valid && a.flags == b.flags;
}

/// A value guaranteed to differ from `x` while exercising bits across the
/// value's whole observed width (so single-bit condition tests at any
/// level see the change), without straying far past it.
u64 perturb(u64 x) {
  const int width = std::max(effective_width(x), 8);
  const u64 mask = width >= 64 ? ~u64{0} : fp::mask64(width);
  const u64 candidate = x ^ (u64{0x5555555555555555} & mask);
  return candidate != x ? candidate : x ^ 1;
}

/// True when perturbing lane `lane` of the input produced an output that
/// differs from the baseline anywhere the perturbation itself does not
/// account for — i.e. the piece read the lane. `perturbed_value` is the
/// value lane `lane` held on entry to the perturbed run.
bool output_depends_on_lane(const SignalSet& baseline_out,
                            const SignalSet& perturbed_out,
                            u64 perturbed_value, int lane,
                            bool lane_written) {
  if (baseline_out.flags != perturbed_out.flags) return true;
  if (baseline_out.valid != perturbed_out.valid) return true;
  for (int l = 0; l < kMaxSignals; ++l) {
    const auto idx = static_cast<std::size_t>(l);
    if (l == lane) {
      if (lane_written) {
        // The piece writes this lane: a different written value means the
        // write depended on the prior contents (e.g. |=, +=).
        if (baseline_out.lane[idx] != perturbed_out.lane[idx]) return true;
      } else {
        // Pass-through lane. The perturbed value surviving untouched is a
        // plain non-read; the *baseline* value reappearing means the piece
        // overwrote the lane with a value independent of its prior
        // contents (a write that was invisible in the unperturbed run
        // because it happened to restore the same value — e.g. a pack
        // piece computing result == operand A into the operand's lane).
        // Only a third value — one derived from the prior contents —
        // proves a read.
        if (perturbed_out.lane[idx] != perturbed_value &&
            perturbed_out.lane[idx] != baseline_out.lane[idx]) {
          return true;
        }
      }
    } else if (baseline_out.lane[idx] != perturbed_out.lane[idx]) {
      return true;
    }
  }
  return false;
}

}  // namespace

int effective_width(u64 value) {
  if (value == 0) return 0;
  const int unsigned_width = fp::msb_index64(value) + 1;
  // Two's-complement reading: bits to hold the value as a signed number.
  // For a sign-extended negative (top bits all ones) this is 64 minus the
  // length of the sign run plus one.
  const int signed_width =
      ~value == 0 ? 1 : fp::msb_index64(~value) + 2;
  return std::min(unsigned_width, signed_width);
}

ChainAccess infer_chain_access(const rtl::PieceChain& chain,
                               const ChainContract& contract,
                               const Options& opts) {
  const std::size_t n = chain.size();
  ChainAccess access;
  access.piece.resize(n);
  access.width_after.assign(n, {});
  for (auto& pa : access.piece) pa.write_always.fill(true);

  std::array<bool, kMaxSignals> is_input{};
  for (int l : contract.input_lanes) {
    if (l >= 0 && l < kMaxSignals) is_input[static_cast<std::size_t>(l)] = true;
  }

  AccessRecorder recorder;
  for (std::size_t v = 0; v < contract.stimuli.size(); ++v) {
    // Poison every lane the contract does not initialize, so writes of
    // "natural" values (zero included) are observable as changes.
    SignalSet state;
    for (int l = 0; l < kMaxSignals; ++l) {
      state.lane[static_cast<std::size_t>(l)] =
          u64{0x9E3779B97F4A7C15} * static_cast<u64>(l + 3) ^
          (opts.seed + 0xD1B54A32D192ED03 * v);
    }
    for (int l : contract.input_lanes) {
      if (l >= 0 && l < kMaxSignals) {
        state.lane[static_cast<std::size_t>(l)] =
            contract.stimuli[v].lane[static_cast<std::size_t>(l)];
      }
    }
    state.valid = true;
    state.flags = 0;

    // Lanes holding a defined value in THIS vector: contract inputs plus
    // whatever pieces have written so far. Poison in a not-yet-written
    // lane must not leak into the width statistics.
    std::array<bool, kMaxSignals> defined = is_input;

    for (std::size_t p = 0; p < n; ++p) {
      PieceAccess& pa = access.piece[p];
      const SignalSet pre = state;

      // The listener stays attached across the rerun and the perturbation
      // trials too: it is the bounds check, and a chain under lint may be
      // exactly the kind that indexes out of range (DL103).
      recorder.reset();
      rtl::ScopedLaneListener attach(&recorder);
      chain[p].eval(state);
      pa.touched = pa.touched || recorder.any();
      // Snapshot the baseline run's access sets — the trials below may take
      // different branches and touch lanes the baseline did not.
      const std::array<bool, kMaxSignals> baseline_const =
          recorder.const_accessed();
      const std::array<bool, kMaxSignals> baseline_mutable =
          recorder.mutable_accessed();

      // Determinism: an identical rerun must reproduce the output.
      if (!pa.nondeterministic) {
        SignalSet rerun = pre;
        chain[p].eval(rerun);
        if (!states_equal(rerun, state)) pa.nondeterministic = true;
      }

      if (state.flags != pre.flags) pa.writes_flags = true;
      if (state.valid != pre.valid) pa.writes_valid = true;

      // Writes: lanes whose value changed. Anything a const access hit is
      // a definite read.
      for (int l = 0; l < kMaxSignals; ++l) {
        const auto idx = static_cast<std::size_t>(l);
        const bool changed = state.lane[idx] != pre.lane[idx];
        if (changed) pa.write_any[idx] = true;
        if (!changed) pa.write_always[idx] = false;
        if (baseline_const[idx]) pa.read[idx] = true;
      }

      // Reads among the mutably-accessed lanes, by input perturbation.
      for (int l = 0; l < kMaxSignals; ++l) {
        const auto idx = static_cast<std::size_t>(l);
        if (!baseline_mutable[idx]) continue;
        const bool written_here = state.lane[idx] != pre.lane[idx];
        if (pa.read[idx]) continue;
        SignalSet trial = pre;
        trial.lane[idx] = perturb(pre.lane[idx]);
        const u64 perturbed_value = trial.lane[idx];
        chain[p].eval(trial);
        if (output_depends_on_lane(state, trial, perturbed_value, l,
                                   written_here)) {
          pa.read[idx] = true;
        } else if (!written_here && trial.lane[idx] == state.lane[idx] &&
                   trial.lane[idx] != perturbed_value) {
          // The perturbation exposed an overwrite that was invisible in
          // the unperturbed run (the piece recomputed the same value).
          pa.write_any[idx] = true;
          defined[idx] = true;
        }
      }

      for (int oob : recorder.out_of_range()) {
        if (std::find(pa.out_of_range.begin(), pa.out_of_range.end(), oob) ==
            pa.out_of_range.end()) {
          pa.out_of_range.push_back(oob);
        }
      }

      for (int l = 0; l < kMaxSignals; ++l) {
        const auto idx = static_cast<std::size_t>(l);
        if (state.lane[idx] != pre.lane[idx]) defined[idx] = true;
        if (!defined[idx]) continue;
        access.width_after[p][idx] =
            std::max(access.width_after[p][idx],
                     effective_width(state.lane[idx]));
      }
    }
  }

  // With zero stimuli nothing was observed; write_always must not claim
  // the vacuous truth.
  if (contract.stimuli.empty()) {
    for (auto& pa : access.piece) pa.write_always.fill(false);
  }
  return access;
}

}  // namespace flopsim::lint
