// Abstract-interpretation dataflow engine over piece chains.
//
// The DL2xx rules cross-check declared live_bits by SAMPLING: stimulus
// vectors through the instrumented probe give a lower bound on each
// boundary's live width, cushioned by a tolerance knob. This engine is
// the other half of the sandwich — a sound static UPPER bound:
//
//   probe lower bound  <=  true live width  <=  absint upper bound
//
// computed by forward abstract interpretation of each piece's declared
// SemOp program (rtl/semops.hpp) under a product domain
//
//   known-bits (mask of decided bits + their values)
//     x  signed interval [lo, hi]
//
// with per-op transfer functions (add/sub with carry-out reachability,
// mul partial-product width, shifts with jamming, mask/mux join,
// compare), a widening worklist fixpoint (chains are straight-line, but
// the solver accepts arbitrary node graphs so termination is honestly
// testable), and a backward demanded-bits pass that masks each boundary
// down to the bits downstream pieces can actually observe.
//
// Soundness is conditional on the annotations over-approximating the
// evals, and that condition is checked, not assumed: every stimulus is
// replayed concretely and every defined lane value is verified to lie
// inside the abstract state (rule DL400 fires on any escape). When the
// probe's witness width meets the static bound the sandwich collapses —
// the boundary's live width is known EXACTLY, the DL201 tolerance is
// dropped, and an under-declaration becomes the provable error DL401.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "lint/lint.hpp"
#include "rtl/piece.hpp"
#include "rtl/signals.hpp"

namespace flopsim::lint {

/// One abstract lane value: known-bits x signed interval. `defined`
/// distinguishes "never written" from "written, value unknown".
struct AbsVal {
  fp::u64 kmask = 0;  ///< bits whose value is decided
  fp::u64 kval = 0;   ///< their values (kval & ~kmask == 0 invariant)
  fp::i64 lo = INT64_MIN;
  fp::i64 hi = INT64_MAX;
  bool defined = false;

  static AbsVal constant(fp::u64 v);
  static AbsVal any(int width);         ///< unsigned values of <= width bits
  static AbsVal any_signed(int width);  ///< two's-complement width bits

  bool is_constant() const { return defined && kmask == ~fp::u64{0}; }
  fp::u64 constant_value() const { return kval; }
  /// The value `v` is inside this abstract value.
  bool contains(fp::u64 v) const;
  /// Bits that can possibly be 1 in some contained value.
  fp::u64 possible_bits() const;
  /// Sound upper bound on lint::effective_width over contained values.
  int width_bound() const;
  /// Tighten each component by the other (interval from known bits and
  /// known top bits from the interval).
  void canonicalize();

  bool operator==(const AbsVal& o) const {
    return kmask == o.kmask && kval == o.kval && lo == o.lo && hi == o.hi &&
           defined == o.defined;
  }
};

/// Least upper bound and (interval-threshold + known-bits-agreement)
/// widening. Exposed for the domain unit tests.
AbsVal absval_join(const AbsVal& a, const AbsVal& b);
AbsVal absval_widen(const AbsVal& prev, const AbsVal& next);

/// Abstract machine state over the lane file.
struct AbsState {
  std::array<AbsVal, rtl::kMaxSignals> lane;
  bool reachable = false;
};

AbsState absstate_join(const AbsState& a, const AbsState& b);

/// Apply one SemOp to a state (exposed for transfer-function tests).
void absint_transfer(const rtl::SemOp& op, AbsState& state);

/// A generic node graph for the fixpoint solver: each node is a
/// straight-line SemOp block with successor edges. Piece chains compile
/// to a linear graph; the loop tests build back edges.
struct AbsProgram {
  struct Node {
    rtl::SemProgram ops;
    std::vector<int> succ;
  };
  std::vector<Node> nodes;
  int entry = 0;
};

struct SolveResult {
  std::vector<AbsState> in;   ///< fixpoint state at node entry
  std::vector<AbsState> out;  ///< state after the node's ops
  int iterations = 0;         ///< worklist pops until stabilization
};

/// Worklist fixpoint with widening after `widen_after` joins at a node.
SolveResult absint_solve(const AbsProgram& program, const AbsState& entry,
                         int widen_after = 4);

/// Per-lane facts at one cut boundary.
struct LaneBound {
  int lane = -1;
  fp::u64 demand = 0;  ///< bits downstream pieces can observe
  int upper = 0;       ///< proven width bound (demand-masked)
  int lower = 0;       ///< widest demand-masked value a stimulus produced
  bool constant = false;
  fp::u64 constant_value = 0;
};

struct BoundaryBounds {
  int boundary = -1;  ///< register after piece `boundary`
  bool final_boundary = false;
  int upper = 0;  ///< sum of per-lane proven widths
  int lower = 0;  ///< sum of per-lane concrete witness widths
  std::vector<LaneBound> lanes;
  /// The sandwich collapsed: the boundary's live width is known exactly.
  bool exact() const { return lower == upper; }
};

/// Everything the engine proved about one chain.
struct ChainAbsint {
  /// Every piece carried a SemOp annotation; false disables all
  /// absint-derived rules for the chain (probe-only linting applies).
  bool annotated = false;
  /// One entry per cuttable boundary (plus the final output register),
  /// indexed by position in this vector; `boundary` names the piece.
  std::vector<BoundaryBounds> boundaries;
  /// Piece proofs, index-aligned with the chain.
  std::vector<bool> piece_dead;         ///< no written bit is ever demanded
  std::vector<bool> piece_constant;     ///< all written lanes proven constant
  std::vector<bool> piece_unreachable;  ///< every op provably disabled
  /// Fixpoint state after each piece — piece_constant consumers (the
  /// compiled backend's absint fold) read the constant values from here.
  std::vector<AbsState> piece_out;
  /// DL400 containment violations, DL404 unreachable ops, DL405 carry
  /// truncation — findings the analysis itself produces.
  Report findings;
  int containment_checks = 0;  ///< concrete values verified against the state
};

/// Run the full analysis: forward fixpoint, backward demanded bits,
/// concrete-replay containment, boundary summaries.
ChainAbsint analyze_chain(const rtl::PieceChain& chain,
                          const ChainContract& contract, const Options& opts);

/// Cross-check the compiled backend against the proofs: DL402 for a
/// proven-constant piece the compiler kept as a call, DL403 (piece form)
/// for a proven-dead piece it kept, DL404 (warning form) for a pruned
/// piece the proofs still see as live. `disposition` is
/// CompiledProgram::disposition() widened to ints (0 kept / 1 folded /
/// 2 pruned) to keep this header free of rtl/program.hpp.
Report crosscheck_compiled(const rtl::PieceChain& chain,
                           const ChainAbsint& absint,
                           const std::vector<int>& disposition,
                           const std::string& subject);

}  // namespace flopsim::lint
