#include "lint/report.hpp"

#include <sstream>

#include "obs/sink.hpp"

namespace flopsim::lint {

std::string format_finding(const Finding& f) {
  std::ostringstream os;
  os << f.subject << ": ";
  if (f.piece >= 0) {
    os << "piece " << f.piece;
    if (!f.piece_name.empty()) os << " '" << f.piece_name << "'";
    os << " ";
  }
  if (f.lane >= 0) os << "lane " << f.lane << " ";
  if (f.boundary >= 0 && f.piece < 0) os << "boundary " << f.boundary << " ";
  os << to_string(f.severity) << " [" << f.rule << "]: " << f.message;
  return os.str();
}

void write_text(std::ostream& os, const Report& report, bool include_notes) {
  int shown = 0;
  for (const Finding& f : report.findings) {
    if (f.severity == Severity::kNote && !include_notes) continue;
    os << format_finding(f) << "\n";
    ++shown;
  }
  os << shown << " finding" << (shown == 1 ? "" : "s") << ": "
     << report.errors() << " error" << (report.errors() == 1 ? "" : "s")
     << ", " << report.warnings() << " warning"
     << (report.warnings() == 1 ? "" : "s") << "\n";
  // The sandwich coverage line: only rendered once the absint engine has
  // analyzed at least one subject, so probe-only reports keep their
  // pre-absint shape.
  if (report.absint_subjects > 0) {
    os << "absint: " << report.absint_subjects << " subject"
       << (report.absint_subjects == 1 ? "" : "s") << " analyzed, "
       << report.absint_boundaries << " boundaries bounded ("
       << report.absint_exact << " exact), " << report.absint_checks
       << " containment checks\n";
  }
}

int write_jsonl(std::ostream& os, const Report& report, bool include_notes) {
  int lines = 0;
  for (const Finding& f : report.findings) {
    if (f.severity == Severity::kNote && !include_notes) continue;
    obs::JsonObject obj;
    obj.field("rule", f.rule)
        .field("severity", to_string(f.severity))
        .field("subject", f.subject)
        .field("piece", f.piece)
        .field("piece_name", f.piece_name)
        .field("lane", f.lane)
        .field("boundary", f.boundary)
        .field("message", f.message);
    os << obj.str() << "\n";
    ++lines;
  }
  obs::JsonObject summary;
  summary.field("summary", true)
      .field("findings", static_cast<int>(report.findings.size()))
      .field("errors", report.errors())
      .field("warnings", report.warnings());
  if (report.absint_subjects > 0) {
    summary.field("absint_subjects", report.absint_subjects)
        .field("absint_boundaries", report.absint_boundaries)
        .field("absint_exact", report.absint_exact)
        .field("absint_checks", report.absint_checks);
  }
  os << summary.str() << "\n";
  return lines + 1;
}

}  // namespace flopsim::lint
