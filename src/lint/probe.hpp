// Lane def-use inference over a piece chain.
//
// Pieces are opaque `std::function<void(SignalSet&)>` blobs, so their
// read/write sets cannot be gathered syntactically. Instead the chain is
// executed on a handful of stimulus vectors with a LaneAccessListener
// attached (rtl/signals.hpp), and every mutable access is classified by
// observation:
//
//   * const operator[] access        -> definite read
//   * output value != input value    -> write (for that vector)
//   * perturbing the lane's input changes any output lane, the flag byte,
//     or the written value           -> read (the piece's behavior depends
//                                       on the lane's prior contents)
//
// Lanes never named in the contract start poisoned (a per-lane pattern),
// so a piece that zero-initializes a lane registers as a writer rather
// than a reader of a coincidentally-zero value. Classification errs
// toward the conservative side: a missed read can suppress a dead-write
// warning but can never fabricate an uninitialized-read error.
#pragma once

#include <array>
#include <vector>

#include "lint/lint.hpp"
#include "rtl/piece.hpp"
#include "rtl/signals.hpp"

namespace flopsim::lint {

struct PieceAccess {
  /// Lane read by this piece (behavior depends on the lane's prior value).
  std::array<bool, rtl::kMaxSignals> read{};
  /// Lane changed by this piece in at least one stimulus vector.
  std::array<bool, rtl::kMaxSignals> write_any{};
  /// Lane changed by this piece in every stimulus vector — the only
  /// writes that can kill an earlier write unconditionally.
  std::array<bool, rtl::kMaxSignals> write_always{};
  /// Raw out-of-range indices this piece accessed (deduplicated).
  std::vector<int> out_of_range;
  /// Two runs on identical input produced different outputs.
  bool nondeterministic = false;
  /// The eval accessed at least one lane.
  bool touched = false;
  /// The piece changed SignalSet::flags in at least one stimulus vector.
  bool writes_flags = false;
  /// The piece changed SignalSet::valid in at least one stimulus vector.
  /// Units never should (DONE belongs to the simulator); the compiled
  /// evaluation backends refuse chains where this fires (rtl/program.*).
  bool writes_valid = false;
};

struct ChainAccess {
  std::vector<PieceAccess> piece;  ///< one entry per chain piece
  /// width_after[p][L]: max effective bit width observed in lane L right
  /// after piece p evaluated (two's-complement aware, so a negative
  /// running exponent measures as its signed width, not 64).
  std::vector<std::array<int, rtl::kMaxSignals>> width_after;
};

/// Effective hardware width of a lane value: bits needed to represent it
/// unsigned, or as a two's-complement value if the top bits are a sign
/// run — whichever is narrower. Zero for 0.
int effective_width(fp::u64 value);

/// Run the inference. Requires every piece to have a non-null eval (the
/// structural rules reject such chains before inference runs).
ChainAccess infer_chain_access(const rtl::PieceChain& chain,
                               const ChainContract& contract,
                               const Options& opts);

}  // namespace flopsim::lint
