#include "lint/lint.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

#include "fault/campaign.hpp"
#include "lint/absint.hpp"
#include "lint/probe.hpp"
#include "rtl/program.hpp"
#include "units/converter_unit.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::lint {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

int Report::count(Severity s) const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity == s) ++n;
  }
  return n;
}

void Report::merge(Report other) {
  for (Finding& f : other.findings) findings.push_back(std::move(f));
  absint_subjects += other.absint_subjects;
  absint_boundaries += other.absint_boundaries;
  absint_exact += other.absint_exact;
  absint_checks += other.absint_checks;
}

std::vector<Finding> Report::with_rule(const std::string& rule) const {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> kRules = {
      {"DL001", Severity::kError,
       "piece delay_ns must be finite and non-negative"},
      {"DL002", Severity::kError,
       "delay_chained_ns is a discount: it must not exceed delay_ns"},
      {"DL003", Severity::kWarning,
       "delay_chained_ns declared on a piece with no same-group predecessor "
       "(the discount can never apply)"},
      {"DL004", Severity::kError, "piece has no eval function"},
      {"DL005", Severity::kWarning, "empty or duplicate piece name"},
      {"DL006", Severity::kError,
       "live_bits must be non-negative (negative: error; zero on a cuttable "
       "internal boundary: warning)"},
      {"DL007", Severity::kError, "chain has no pieces"},
      {"DL008", Severity::kWarning,
       "multi-piece chain with no legal internal cut (cannot be pipelined)"},
      {"DL009", Severity::kError,
       "final piece declares live_bits == 0 (the always-present output "
       "register has no width)"},
      {"DL010", Severity::kError, "piece area components must be non-negative"},
      {"DL101", Severity::kError,
       "lane read before any piece (or the input contract) wrote it"},
      {"DL102", Severity::kWarning,
       "dead write: lane is overwritten or unread downstream"},
      {"DL103", Severity::kError,
       "lane access outside [0, kMaxSignals)"},
      {"DL104", Severity::kError,
       "eval is nondeterministic (two runs on identical input diverged)"},
      {"DL105", Severity::kNote,
       "piece accesses no lanes (timing/area placeholder)"},
      {"DL106", Severity::kError, "result lane is never written"},
      {"DL201", Severity::kError,
       "declared live_bits at a cuttable boundary is below the inferred "
       "live width (the area model undercounts pipeline FFs)"},
      {"DL202", Severity::kWarning,
       "declared live_bits far exceeds the inferred live width"},
      {"DL301", Severity::kError,
       "stage_begin is malformed (must rise strictly from 0 to piece count)"},
      {"DL302", Severity::kError,
       "stage boundary placed at a non-cuttable position"},
      {"DL303", Severity::kError,
       "realized pipeline depth disagrees with the clamped requested depth"},
      {"DL304", Severity::kError,
       "evaluate_timing disagrees with recomputed per-stage delays"},
      {"DL305", Severity::kError,
       "unit latency disagrees with the plan's stage count"},
      {"DL306", Severity::kError,
       "evaluate_area register count disagrees with the live_bits "
       "declarations"},
      {"DL400", Severity::kError,
       "a concrete stimulus escaped the abstract state: the piece's sem "
       "annotation under-approximates its eval"},
      {"DL401", Severity::kError,
       "declared live_bits at a cut boundary is below the exactly-proven "
       "live width (static bound and concrete witness agree; no tolerance)"},
      {"DL402", Severity::kWarning,
       "piece output proven constant, but the compiled backend keeps it as "
       "a call (missed constant fold)"},
      {"DL403", Severity::kWarning,
       "lane or piece proven dead beyond the observed liveness the FF model "
       "and compiled backend rely on"},
      {"DL404", Severity::kWarning,
       "unreachable piece ops, or a compiled-backend prune the proofs do "
       "not support"},
      {"DL405", Severity::kWarning,
       "carry/overflow out of a truncated adder/multiplier is reachable "
       "into a dropped bit"},
  };
  return kRules;
}

const RuleInfo* find_rule(const std::string& id) {
  // Built once, so every Finding construction pays a hash lookup instead
  // of a registry scan.
  static const auto& index = *[] {
    auto* m = new std::unordered_map<std::string_view, const RuleInfo*>();
    for (const RuleInfo& r : rule_registry()) m->emplace(r.id, &r);
    return m;
  }();
  const auto it = index.find(id);
  return it == index.end() ? nullptr : it->second;
}

namespace {

/// "DL4xx" family wildcards: a trailing run of 'x' makes the entry match
/// any rule sharing the fixed prefix at the same length.
bool rule_matches_entry(const std::string& rule, const std::string& entry) {
  std::size_t fixed = entry.size();
  while (fixed > 0 && (entry[fixed - 1] == 'x' || entry[fixed - 1] == 'X')) {
    --fixed;
  }
  if (fixed == entry.size()) return rule == entry;
  return rule.size() == entry.size() &&
         rule.compare(0, fixed, entry, 0, fixed) == 0;
}

bool entry_matches_any_rule(const std::string& entry) {
  for (const RuleInfo& r : rule_registry()) {
    if (rule_matches_entry(r.id, entry)) return true;
  }
  return false;
}

}  // namespace

RuleFilter RuleFilter::parse(const std::string& spec) {
  RuleFilter filter;
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    while (!entry.empty() && entry.front() == ' ') entry.erase(0, 1);
    while (!entry.empty() && entry.back() == ' ') entry.pop_back();
    if (entry.empty()) continue;
    const bool negated = entry.front() == '-';
    if (negated) entry.erase(0, 1);
    if (entry.empty() || !entry_matches_any_rule(entry)) {
      throw std::invalid_argument("unknown rule or family '" + entry +
                                  "' in --rules");
    }
    (negated ? filter.exclude : filter.include).push_back(entry);
  }
  return filter;
}

bool RuleFilter::allows(const std::string& rule) const {
  for (const std::string& e : exclude) {
    if (rule_matches_entry(rule, e)) return false;
  }
  if (include.empty()) return true;
  for (const std::string& e : include) {
    if (rule_matches_entry(rule, e)) return true;
  }
  return false;
}

void apply_rule_filter(Report& report, const RuleFilter& filter) {
  if (filter.empty()) return;
  std::erase_if(report.findings, [&filter](const Finding& f) {
    return !filter.allows(f.rule);
  });
}

namespace {

using rtl::kMaxSignals;

/// Finding factory that stamps the registry severity for the rule.
Finding make_finding(const char* rule, const std::string& subject,
                     std::string message) {
  const RuleInfo* info = find_rule(rule);
  Finding f;
  f.rule = rule;
  f.severity = info != nullptr ? info->severity : Severity::kError;
  f.subject = subject;
  f.message = std::move(message);
  return f;
}

Finding piece_finding(const char* rule, const std::string& subject,
                      const rtl::PieceChain& chain, int piece,
                      std::string message) {
  Finding f = make_finding(rule, subject, std::move(message));
  f.piece = piece;
  if (piece >= 0 && piece < static_cast<int>(chain.size())) {
    f.piece_name = chain[static_cast<std::size_t>(piece)].name;
  }
  return f;
}

void structural_rules(const rtl::PieceChain& chain, const std::string& subject,
                      Report& report) {
  const int n = static_cast<int>(chain.size());
  std::set<std::string> seen_names;
  for (int i = 0; i < n; ++i) {
    const rtl::Piece& p = chain[static_cast<std::size_t>(i)];
    std::ostringstream msg;
    if (!std::isfinite(p.delay_ns) || p.delay_ns < 0.0) {
      msg << "delay_ns = " << p.delay_ns << " is not a finite non-negative "
          << "delay";
      report.add(piece_finding("DL001", subject, chain, i, msg.str()));
    } else if (p.delay_chained_ns >= 0.0 &&
               p.delay_chained_ns > p.delay_ns + 1e-12) {
      msg << "delay_chained_ns = " << p.delay_chained_ns
          << " exceeds delay_ns = " << p.delay_ns
          << "; the chaining discount would lengthen the stage";
      report.add(piece_finding("DL002", subject, chain, i, msg.str()));
    }
    if (p.delay_chained_ns >= 0.0 &&
        (i == 0 || chain[static_cast<std::size_t>(i - 1)].group != p.group)) {
      msg.str("");
      msg << "declares a chaining discount but its predecessor is "
          << (i == 0 ? std::string("the chain input")
                     : "group '" + chain[static_cast<std::size_t>(i - 1)].group +
                           "'")
          << ", not group '" << p.group << "' — the discount can never apply";
      report.add(piece_finding("DL003", subject, chain, i, msg.str()));
    }
    if (!p.eval) {
      report.add(
          piece_finding("DL004", subject, chain, i, "eval is unset"));
    }
    if (p.name.empty()) {
      report.add(piece_finding("DL005", subject, chain, i,
                               "piece has an empty name"));
    } else if (!seen_names.insert(p.name).second) {
      report.add(piece_finding("DL005", subject, chain, i,
                               "duplicate piece name '" + p.name + "'"));
    }
    if (p.live_bits < 0) {
      msg.str("");
      msg << "live_bits = " << p.live_bits << " is negative";
      report.add(piece_finding("DL006", subject, chain, i, msg.str()));
    } else if (p.live_bits == 0 && p.cut_after && i + 1 < n) {
      Finding f = piece_finding(
          "DL006", subject, chain, i,
          "cuttable boundary declares live_bits = 0: a register here would "
          "be free, which starves the FF-cost model");
      f.severity = Severity::kWarning;
      f.boundary = i;
      report.add(f);
    }
    if (p.area.slices < 0 || p.area.luts < 0 || p.area.ffs < 0 ||
        p.area.bmults < 0 || p.area.brams < 0) {
      report.add(piece_finding("DL010", subject, chain, i,
                               "area declares a negative resource count"));
    }
  }
  if (n == 0) {
    report.add(make_finding("DL007", subject, "chain is empty"));
    return;
  }
  if (n > 1 && rtl::max_stages(chain) == 1) {
    report.add(make_finding(
        "DL008", subject,
        "no internal boundary is cuttable: the chain cannot be pipelined"));
  }
  if (chain.back().live_bits == 0) {
    report.add(piece_finding(
        "DL009", subject, chain, n - 1,
        "final piece declares live_bits = 0, so the always-present output "
        "register has no width"));
  }
}

void defuse_rules(const rtl::PieceChain& chain, const ChainContract& contract,
                  const ChainAccess& access, const Options& opts,
                  const std::string& subject, Report& report) {
  const int n = static_cast<int>(chain.size());
  std::array<bool, kMaxSignals> written{};
  for (int l : contract.input_lanes) {
    if (l >= 0 && l < kMaxSignals) written[static_cast<std::size_t>(l)] = true;
  }

  bool result_written = false;
  for (int p = 0; p < n; ++p) {
    const PieceAccess& pa = access.piece[static_cast<std::size_t>(p)];
    for (int oob : pa.out_of_range) {
      std::ostringstream msg;
      msg << "accessed lane " << oob << " outside [0, " << kMaxSignals << ")";
      Finding f = piece_finding("DL103", subject, chain, p, msg.str());
      f.lane = oob;
      report.add(f);
    }
    if (pa.nondeterministic) {
      report.add(piece_finding(
          "DL104", subject, chain, p,
          "eval produced different outputs on identical inputs"));
    }
    if (!pa.touched && opts.notes) {
      report.add(piece_finding("DL105", subject, chain, p,
                               "accesses no lanes (timing/area placeholder)"));
    }
    for (int l = 0; l < kMaxSignals; ++l) {
      const auto idx = static_cast<std::size_t>(l);
      if (pa.read[idx] && !written[idx]) {
        std::ostringstream msg;
        msg << "reads lane " << l << " before any piece (or the input "
            << "contract) wrote it";
        Finding f = piece_finding("DL101", subject, chain, p, msg.str());
        f.lane = l;
        report.add(f);
      }
    }
    for (int l = 0; l < kMaxSignals; ++l) {
      const auto idx = static_cast<std::size_t>(l);
      if (pa.write_any[idx]) {
        written[idx] = true;
        if (l == contract.result_lane) result_written = true;
      }
    }
  }
  if (!result_written && n > 0) {
    std::ostringstream msg;
    msg << "result lane " << contract.result_lane
        << " is never written by any piece";
    Finding f = make_finding("DL106", subject, msg.str());
    f.lane = contract.result_lane;
    report.add(f);
  }

  // Dead writes: a write with no possible downstream reader. Conditional
  // downstream writes (write_any but not write_always) do not kill a
  // value — some vector may leave it live — so only unconditional
  // overwrites and the chain end count.
  for (int p = 0; p < n; ++p) {
    const PieceAccess& pa = access.piece[static_cast<std::size_t>(p)];
    for (int l = 0; l < kMaxSignals; ++l) {
      const auto idx = static_cast<std::size_t>(l);
      if (!pa.write_any[idx]) continue;
      bool live = false;
      bool killed = false;
      for (int q = p + 1; q < n && !live && !killed; ++q) {
        const PieceAccess& qa = access.piece[static_cast<std::size_t>(q)];
        if (qa.read[idx]) {
          live = true;
        } else if (qa.write_always[idx]) {
          killed = true;
        }
      }
      if (live) continue;
      if (!killed && l == contract.result_lane) continue;
      std::ostringstream msg;
      msg << "writes lane " << l << " but the value is "
          << (killed ? "unconditionally overwritten before any read"
                     : "never read downstream");
      Finding f = piece_finding("DL102", subject, chain, p, msg.str());
      f.lane = l;
      report.add(f);
    }
  }
}

/// Comma-joined "lane:width" detail for a proven boundary.
std::string absint_lane_detail(const BoundaryBounds& bb) {
  std::ostringstream out;
  bool first = true;
  for (const LaneBound& lb : bb.lanes) {
    if (lb.demand == 0) continue;
    if (!first) out << ",";
    first = false;
    out << lb.lane << ":" << lb.upper;
  }
  return out.str();
}

void live_bits_rules(const rtl::PieceChain& chain,
                     const ChainContract& contract, const ChainAccess& access,
                     const Options& opts, const std::string& subject,
                     const ChainAbsint* absint, Report& report) {
  const int n = static_cast<int>(chain.size());
  if (n == 0) return;

  std::array<bool, kMaxSignals> defined{};
  for (int l : contract.input_lanes) {
    if (l >= 0 && l < kMaxSignals) defined[static_cast<std::size_t>(l)] = true;
  }
  // DL403 dedup: a lane that stays provably dead across consecutive
  // boundaries is one finding, reported where the dead stretch starts.
  std::array<bool, kMaxSignals> dead_reported{};

  for (int b = 0; b < n; ++b) {
    for (int l = 0; l < kMaxSignals; ++l) {
      const auto idx = static_cast<std::size_t>(l);
      if (access.piece[static_cast<std::size_t>(b)].write_any[idx]) {
        defined[idx] = true;
      }
    }
    const bool final_boundary = b == n - 1;
    if (!final_boundary && !chain[static_cast<std::size_t>(b)].cut_after) {
      continue;
    }

    // Live lanes: defined at this boundary and read by a later piece. The
    // final boundary is the output register: only the result lane leaves.
    int inferred = 0;
    std::ostringstream lanes;
    bool first_lane = true;
    std::vector<int> probe_live;
    if (final_boundary) {
      const auto idx = static_cast<std::size_t>(contract.result_lane);
      inferred = access.width_after[static_cast<std::size_t>(b)][idx];
      lanes << contract.result_lane << ":" << inferred;
    } else {
      for (int l = 0; l < kMaxSignals; ++l) {
        const auto idx = static_cast<std::size_t>(l);
        if (!defined[idx]) continue;
        bool read_later = false;
        for (int q = b + 1; q < n && !read_later; ++q) {
          read_later = access.piece[static_cast<std::size_t>(q)].read[idx];
        }
        if (!read_later) continue;
        const int w = access.width_after[static_cast<std::size_t>(b)][idx];
        if (!first_lane) lanes << ",";
        first_lane = false;
        lanes << l << ":" << w;
        inferred += w;
        probe_live.push_back(l);
      }
    }

    const BoundaryBounds* bb = nullptr;
    if (absint != nullptr && absint->annotated) {
      for (const BoundaryBounds& cand : absint->boundaries) {
        if (cand.boundary == b) {
          bb = &cand;
          break;
        }
      }
    }

    const int declared = chain[static_cast<std::size_t>(b)].live_bits;
    if (bb != nullptr) {
      // DL403: lanes the probe observed as live (read downstream) whose
      // demanded-bit mask the sem annotations prove empty — the value is
      // recomputed or ignored past here, so its FFs are waste.
      for (const LaneBound& lb : bb->lanes) {
        if (lb.lane < 0 || lb.lane >= kMaxSignals) continue;
        const auto lidx = static_cast<std::size_t>(lb.lane);
        if (lb.demand != 0) {
          dead_reported[lidx] = false;
          continue;
        }
        const bool is_probe_live =
            std::find(probe_live.begin(), probe_live.end(), lb.lane) !=
            probe_live.end();
        if (!is_probe_live || dead_reported[lidx]) continue;
        dead_reported[lidx] = true;
        std::ostringstream msg;
        msg << "lane " << lb.lane << " is read downstream under the probe, "
            << "but no bit of it is demanded by the sem annotations: provably "
            << "dead from here until it is rewritten";
        Finding f = piece_finding("DL403", subject, chain, b, msg.str());
        f.lane = lb.lane;
        f.boundary = b;
        report.add(f);
      }
      if (bb->exact()) {
        // The sandwich collapsed: static upper bound == concrete witness.
        // The width is known exactly, so the DL201 tolerance is dropped
        // and a deficit is the provable error DL401.
        if (declared < bb->upper) {
          std::ostringstream msg;
          msg << "declares live_bits = " << declared
              << " but the live width is exactly " << bb->upper
              << " — proven: the absint upper bound meets a concrete "
              << "stimulus witness (lanes " << absint_lane_detail(*bb)
              << "); the FF-cost model undercounts by "
              << (bb->upper - declared) << " bits (absint-exact path)";
          Finding f = piece_finding("DL401", subject, chain, b, msg.str());
          f.boundary = b;
          report.add(f);
        } else if (declared > bb->upper && !final_boundary) {
          // The final boundary may legitimately count the flag byte and
          // DONE bit on top of the result lane — widths outside the lane
          // model — so overcount checks stop at internal boundaries.
          std::ostringstream msg;
          msg << "declares live_bits = " << declared
              << " but the live width is exactly " << bb->upper << " (lanes "
              << absint_lane_detail(*bb)
              << "): the FF-cost model overcounts by " << (declared - bb->upper)
              << " bits (absint-exact path)";
          Finding f = piece_finding("DL202", subject, chain, b, msg.str());
          f.boundary = b;
          report.add(f);
        }
      } else {
        // Sandwich open: probe witness lower bound < proven upper bound.
        // The tolerance survives only on this path, against the
        // demand-masked witness.
        if (declared + opts.live_bits_deficit_tol < bb->lower) {
          std::ostringstream msg;
          msg << "declares live_bits = " << declared
              << " but a concrete stimulus demands at least " << bb->lower
              << " live bits (proven upper bound " << bb->upper
              << "): the FF-cost model undercounts by "
              << (bb->lower - declared)
              << " bits (probe-witness path, tolerance "
              << opts.live_bits_deficit_tol << ")";
          Finding f = piece_finding("DL201", subject, chain, b, msg.str());
          f.boundary = b;
          report.add(f);
        } else if (declared > bb->upper && !final_boundary) {
          std::ostringstream msg;
          msg << "declares live_bits = " << declared
              << " above the proven upper bound " << bb->upper << " (lanes "
              << absint_lane_detail(*bb)
              << "): no value can need that many FFs (absint upper-bound "
              << "path)";
          Finding f = piece_finding("DL202", subject, chain, b, msg.str());
          f.boundary = b;
          report.add(f);
        }
      }
      continue;
    }

    if (declared + opts.live_bits_deficit_tol < inferred) {
      std::ostringstream msg;
      msg << "declares live_bits = " << declared
          << " but the inferred live width is " << inferred << " (lanes "
          << lanes.str() << "): the FF-cost model undercounts by "
          << (inferred - declared) << " bits (probe-only path)";
      Finding f = piece_finding("DL201", subject, chain, b, msg.str());
      f.boundary = b;
      report.add(f);
    } else if (declared > opts.live_bits_excess_factor * inferred +
                              opts.live_bits_excess_slack) {
      std::ostringstream msg;
      msg << "declares live_bits = " << declared
          << " but the inferred live width is only " << inferred << " (lanes "
          << lanes.str()
          << "): the FF-cost model may overcount (probe-only path)";
      Finding f = piece_finding("DL202", subject, chain, b, msg.str());
      f.boundary = b;
      report.add(f);
    }
  }
}

bool plan_well_formed(const rtl::PieceChain& chain,
                      const rtl::PipelinePlan& plan) {
  const int n = static_cast<int>(chain.size());
  if (plan.stage_begin.size() < 2) return false;
  if (plan.stage_begin.front() != 0) return false;
  if (plan.stage_begin.back() != n) return false;
  for (std::size_t i = 1; i < plan.stage_begin.size(); ++i) {
    if (plan.stage_begin[i] <= plan.stage_begin[i - 1]) return false;
  }
  return true;
}

}  // namespace

Report lint_chain(const rtl::PieceChain& chain, const ChainContract& contract,
                  const Options& opts) {
  return lint_chain(chain, contract, opts, nullptr);
}

Report lint_chain(const rtl::PieceChain& chain, const ChainContract& contract,
                  const Options& opts, ChainAbsint* out_absint) {
  const std::string& subject = contract.name;
  Report report;
  if (out_absint != nullptr) *out_absint = ChainAbsint{};
  structural_rules(chain, subject, report);

  // Def-use inference executes the evals; a chain with a missing eval (or
  // no pieces) cannot be driven.
  const bool drivable =
      !chain.empty() &&
      std::all_of(chain.begin(), chain.end(),
                  [](const rtl::Piece& p) { return static_cast<bool>(p.eval); });
  if (!drivable || contract.stimuli.empty()) return report;

  const ChainAccess access = infer_chain_access(chain, contract, opts);
  defuse_rules(chain, contract, access, opts, subject, report);

  ChainAbsint absint;
  if (opts.absint) {
    absint = analyze_chain(chain, contract, opts);
    if (absint.annotated) {
      report.absint_subjects = 1;
      report.absint_boundaries = static_cast<int>(absint.boundaries.size());
      for (const BoundaryBounds& bb : absint.boundaries) {
        if (bb.exact()) ++report.absint_exact;
      }
      report.absint_checks = absint.containment_checks;
      report.merge(absint.findings);
    }
  }
  live_bits_rules(chain, contract, access, opts, subject,
                  absint.annotated ? &absint : nullptr, report);
  if (out_absint != nullptr) *out_absint = std::move(absint);
  return report;
}

Report check_timing_claim(const rtl::PieceChain& chain,
                          const rtl::PipelinePlan& plan,
                          const device::TechModel& tech,
                          const rtl::Timing& claimed,
                          const std::string& subject) {
  Report report;
  if (!plan_well_formed(chain, plan)) return report;
  double critical = 0.0;
  int critical_stage = 0;
  for (int s = 0; s < plan.stages(); ++s) {
    const double d =
        rtl::segment_delay(chain, plan.stage_begin[static_cast<std::size_t>(s)],
                           plan.stage_begin[static_cast<std::size_t>(s + 1)]);
    if (d > critical) {
      critical = d;
      critical_stage = s;
    }
  }
  const double period = critical + tech.register_overhead_ns();
  const auto close = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * std::max({1.0, std::abs(a), std::abs(b)});
  };
  std::ostringstream msg;
  if (!close(claimed.critical_ns, critical) ||
      claimed.critical_stage != critical_stage) {
    msg << "claimed critical stage " << claimed.critical_stage << " at "
        << claimed.critical_ns << " ns, but recomputing segment_delay gives "
        << "stage " << critical_stage << " at " << critical << " ns";
    Finding f = make_finding("DL304", subject, msg.str());
    f.boundary = claimed.critical_stage;
    report.add(f);
  } else if (!close(claimed.period_ns, period) ||
             !close(claimed.freq_mhz, 1000.0 / period)) {
    msg << "claimed period " << claimed.period_ns << " ns / "
        << claimed.freq_mhz << " MHz, but critical + register overhead gives "
        << period << " ns / " << 1000.0 / period << " MHz";
    report.add(make_finding("DL304", subject, msg.str()));
  }
  return report;
}

Report check_area_claim(const rtl::PieceChain& chain,
                        const rtl::PipelinePlan& plan,
                        const rtl::AreaBreakdown& claimed,
                        const std::string& subject) {
  Report report;
  if (!plan_well_formed(chain, plan)) return report;
  // Register bits from the declarations: the live width at each internal
  // cut, the output register, and the 1-bit DONE shift per stage.
  int ffs = 0;
  for (int s = 1; s < plan.stages(); ++s) {
    ffs += chain[static_cast<std::size_t>(
                     plan.stage_begin[static_cast<std::size_t>(s)] - 1)]
               .live_bits;
  }
  ffs += chain.back().live_bits;
  ffs += plan.stages();
  std::ostringstream msg;
  if (claimed.pipeline_ffs != ffs) {
    msg << "claimed " << claimed.pipeline_ffs << " pipeline FFs, but the "
        << "live_bits declarations at the plan's cuts total " << ffs;
    report.add(make_finding("DL306", subject, msg.str()));
  } else if (claimed.total.ffs != claimed.pipeline_ffs ||
             claimed.absorbed_ffs < 0 ||
             claimed.absorbed_ffs > claimed.pipeline_ffs) {
    msg << "FF breakdown is inconsistent: total.ffs = " << claimed.total.ffs
        << ", pipeline_ffs = " << claimed.pipeline_ffs << ", absorbed_ffs = "
        << claimed.absorbed_ffs;
    report.add(make_finding("DL306", subject, msg.str()));
  }
  return report;
}

Report lint_plan(const rtl::PieceChain& chain, const rtl::PipelinePlan& plan,
                 const device::TechModel& tech, device::Objective objective,
                 const std::string& subject, const Options& opts) {
  (void)opts;
  Report report;
  const int n = static_cast<int>(chain.size());
  if (!plan_well_formed(chain, plan)) {
    std::ostringstream msg;
    msg << "stage_begin [";
    for (std::size_t i = 0; i < plan.stage_begin.size(); ++i) {
      msg << (i != 0 ? " " : "") << plan.stage_begin[i];
    }
    msg << "] must rise strictly from 0 to " << n;
    report.add(make_finding("DL301", subject, msg.str()));
    return report;
  }
  for (int s = 1; s < plan.stages(); ++s) {
    const int b = plan.stage_begin[static_cast<std::size_t>(s)];
    if (!chain[static_cast<std::size_t>(b - 1)].cut_after) {
      std::ostringstream msg;
      msg << "stage " << s << " begins after piece "
          << chain[static_cast<std::size_t>(b - 1)].name
          << ", which declares cut_after = false";
      Finding f = piece_finding("DL302", subject, chain, b - 1, msg.str());
      f.boundary = b - 1;
      report.add(f);
    }
  }
  report.merge(check_timing_claim(chain, plan, tech,
                                  rtl::evaluate_timing(chain, plan, tech),
                                  subject));
  report.merge(check_area_claim(
      chain, plan, rtl::evaluate_area(chain, plan, tech, objective), subject));
  return report;
}

Report check_depth_claim(int realized, int requested, int max_stages,
                         int latency, int plan_stages,
                         const std::string& subject) {
  Report report;
  const int expected = std::clamp(requested, 1, max_stages);
  if (realized != expected) {
    std::ostringstream msg;
    msg << "realized depth " << realized << " but the requested depth "
        << requested << " clamps to " << expected << " (max " << max_stages
        << ")";
    report.add(make_finding("DL303", subject, msg.str()));
  }
  if (latency != plan_stages) {
    std::ostringstream msg;
    msg << "declared latency " << latency << " cycles but the plan has "
        << plan_stages << " stages (one register level per stage)";
    report.add(make_finding("DL305", subject, msg.str()));
  }
  return report;
}

namespace {

fp::u64 splitmix64(fp::u64& state) {
  fp::u64 z = (state += 0x9E3779B97F4A7C15);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EB;
  return z ^ (z >> 31);
}

}  // namespace

namespace {

/// Cross-check the compiled backend's piece dispositions against the
/// absint proofs (DL402/DL403/DL404) — the self-check that dead-piece
/// pruning and constant folding agree with the static liveness story.
Report compiled_crosscheck(const rtl::PieceChain& chain,
                           const rtl::PipelinePlan& plan,
                           const ChainContract& contract,
                           const ChainAbsint& absint, const Options& opts) {
  Report report;
  if (!absint.annotated) return report;
  rtl::CompileContract cc;
  cc.input_lanes = contract.input_lanes;
  cc.result_lane = contract.result_lane;
  cc.stimuli = contract.stimuli;
  rtl::CompileOptions co;
  co.probe_seed = opts.seed;
  const rtl::CompiledProgram prog = rtl::compile_program(chain, plan, cc, co);
  std::vector<int> disposition;
  disposition.reserve(prog.disposition().size());
  for (const rtl::CompiledProgram::Disposition d : prog.disposition()) {
    disposition.push_back(static_cast<int>(d));
  }
  return crosscheck_compiled(chain, absint, disposition, contract.name);
}

}  // namespace

Report lint_unit(const units::FpUnit& unit, const Options& opts) {
  const rtl::PieceChain& chain = unit.pieces();
  ChainContract contract;
  contract.name = unit.name();
  contract.input_lanes = {units::detail::kLaneInA, units::detail::kLaneInB,
                          units::detail::kLaneInCtl, units::detail::kLaneInC};
  const int in_bits = unit.format().total_bits();
  contract.input_widths = {in_bits, in_bits, 1, in_bits};
  contract.result_lane = units::detail::kLaneResult;
  const std::vector<units::UnitInput> workload = fault::campaign_workload(
      unit.kind(), unit.format(), opts.vectors, opts.seed);
  for (const units::UnitInput& in : workload) {
    rtl::SignalSet s;
    s[units::detail::kLaneInA] = in.a;
    s[units::detail::kLaneInB] = in.b;
    s[units::detail::kLaneInCtl] = in.subtract ? 1 : 0;
    s[units::detail::kLaneInC] = in.c;
    contract.stimuli.push_back(s);
  }

  ChainAbsint absint;
  Report report = lint_chain(chain, contract, opts, &absint);
  report.merge(compiled_crosscheck(chain, unit.plan(), contract, absint, opts));
  report.merge(lint_plan(chain, unit.plan(), unit.config().tech,
                         unit.config().objective, contract.name, opts));
  report.merge(check_depth_claim(unit.stages(), unit.config().stages,
                                 rtl::max_stages(chain), unit.latency(),
                                 unit.plan().stages(), contract.name));
  return report;
}

Report lint_converter(const units::FormatConverter& cvt, const Options& opts) {
  const rtl::PieceChain& chain = cvt.pieces();
  ChainContract contract;
  contract.name = cvt.name();
  contract.input_lanes = {0};
  contract.input_widths = {cvt.src().total_bits()};
  contract.result_lane = 0;
  fp::u64 rng = opts.seed * 0x9E3779B97F4A7C15 + 1;
  for (int i = 0; i < opts.vectors; ++i) {
    rtl::SignalSet s;
    s[0] = splitmix64(rng) & cvt.src().bits_mask();
    contract.stimuli.push_back(s);
  }

  ChainAbsint absint;
  Report report = lint_chain(chain, contract, opts, &absint);
  report.merge(compiled_crosscheck(chain, cvt.plan(), contract, absint, opts));
  report.merge(lint_plan(chain, cvt.plan(), cvt.config().tech,
                         cvt.config().objective, contract.name, opts));
  report.merge(check_depth_claim(cvt.stages(), cvt.config().stages,
                                 rtl::max_stages(chain), cvt.latency(),
                                 cvt.plan().stages(), contract.name));
  return report;
}

}  // namespace flopsim::lint
