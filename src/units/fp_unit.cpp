#include "units/fp_unit.hpp"

#include <stdexcept>

namespace flopsim::units {

const char* to_string(UnitKind k) {
  switch (k) {
    case UnitKind::kAdder: return "fp_add";
    case UnitKind::kMultiplier: return "fp_mul";
    case UnitKind::kDivider: return "fp_div";
    case UnitKind::kSqrt: return "fp_sqrt";
    case UnitKind::kMac: return "fp_mac";
  }
  return "fp_unknown";
}

namespace {

rtl::PieceChain build_chain(UnitKind kind, fp::FpFormat fmt,
                            const UnitConfig& cfg) {
  cfg.validate();
  switch (kind) {
    case UnitKind::kAdder: return detail::build_adder_chain(fmt, cfg);
    case UnitKind::kMultiplier: return detail::build_multiplier_chain(fmt, cfg);
    case UnitKind::kDivider: return detail::build_divider_chain(fmt, cfg);
    case UnitKind::kSqrt: return detail::build_sqrt_chain(fmt, cfg);
    case UnitKind::kMac: return detail::build_mac_chain(fmt, cfg);
  }
  throw std::invalid_argument("FpUnit: unknown kind");
}

}  // namespace

rtl::SignalSet FpUnit::pack(const UnitInput& in) {
  rtl::SignalSet s;
  s.valid = true;
  s[detail::kLaneInA] = in.a;
  s[detail::kLaneInB] = in.b;
  s[detail::kLaneInCtl] = in.subtract ? 1 : 0;
  s[detail::kLaneInC] = in.c;
  return s;
}

FpUnit::FpUnit(UnitKind kind, fp::FpFormat fmt, const UnitConfig& cfg)
    : kind_(kind),
      fmt_(fmt),
      cfg_(cfg),
      chain_(std::make_unique<rtl::PieceChain>(build_chain(kind, fmt, cfg))),
      plan_(rtl::plan_pipeline(*chain_, cfg.stages)),
      sim_(chain_.get(), plan_) {}

std::string FpUnit::name() const {
  return std::string(to_string(kind_)) + "<" + fmt_.name() + ">/s" +
         std::to_string(stages());
}

rtl::Timing FpUnit::timing() const {
  return rtl::evaluate_timing(*chain_, plan_, cfg_.tech);
}

rtl::AreaBreakdown FpUnit::area() const {
  return rtl::evaluate_area(*chain_, plan_, cfg_.tech, cfg_.objective);
}

double FpUnit::freq_per_area() const {
  const auto a = area();
  return a.total.slices > 0 ? timing().freq_mhz / a.total.slices : 0.0;
}

void FpUnit::step(const std::optional<UnitInput>& in) {
  if (in.has_value()) {
    sim_.step(FpUnit::pack(*in));
  } else {
    sim_.step(std::nullopt);
  }
}

std::optional<UnitOutput> FpUnit::output() const {
  const rtl::SignalSet& out = sim_.output();
  if (!out.valid) return std::nullopt;
  return UnitOutput{out[detail::kLaneResult], out.flags};
}

void FpUnit::reset() { sim_.reset(); }

UnitOutput FpUnit::evaluate(const UnitInput& in) const {
  rtl::SignalSet s = FpUnit::pack(in);
  rtl::evaluate_chain(*chain_, s);
  return UnitOutput{s[detail::kLaneResult], s.flags};
}

}  // namespace flopsim::units
