// FormatConverter: a pipelined format-conversion core.
//
// The paper notes that "some of the commercial floating-point cores use a
// custom format with conversion to and from the IEEE754 standard at
// interfaces to other resources in the system" — this is that interface
// module, generated for any (src, dst) format pair. Widening conversions
// (dst covers src's range and precision) are pure rewiring plus an
// exponent re-bias; narrowing conversions need the align/round datapath.
//
// Like the arithmetic cores, depth only changes latency: every pipeline
// depth is bit-exact with fp::convert under FpEnv::paper.
#pragma once

#include <memory>
#include <optional>

#include "fp/format.hpp"
#include "rtl/pipeline.hpp"
#include "rtl/simulator.hpp"
#include "units/unit_config.hpp"

namespace flopsim::units {

class FormatConverter {
 public:
  FormatConverter(fp::FpFormat src, fp::FpFormat dst, const UnitConfig& cfg);

  FormatConverter(const FormatConverter&) = delete;
  FormatConverter& operator=(const FormatConverter&) = delete;
  FormatConverter(FormatConverter&&) = default;
  FormatConverter& operator=(FormatConverter&&) = default;

  fp::FpFormat src() const { return src_; }
  fp::FpFormat dst() const { return dst_; }
  std::string name() const;

  int stages() const { return plan_.stages(); }
  int latency() const { return plan_.stages(); }
  int max_stages() const { return rtl::max_stages(*chain_); }
  rtl::Timing timing() const;
  rtl::AreaBreakdown area() const;
  double freq_mhz() const { return timing().freq_mhz; }

  struct Output {
    fp::u64 result = 0;
    std::uint8_t flags = 0;
  };

  /// Present a source encoding (or a bubble) and advance one clock.
  void step(const std::optional<fp::u64>& in);
  std::optional<Output> output() const;
  void reset();

  /// Combinational reference.
  Output evaluate(fp::u64 in) const;

  const UnitConfig& config() const { return cfg_; }
  const rtl::PieceChain& pieces() const { return *chain_; }
  const rtl::PipelinePlan& plan() const { return plan_; }

 private:
  fp::FpFormat src_;
  fp::FpFormat dst_;
  UnitConfig cfg_;
  std::unique_ptr<rtl::PieceChain> chain_;
  rtl::PipelinePlan plan_;
  rtl::PipelineSim sim_;
};

}  // namespace flopsim::units
