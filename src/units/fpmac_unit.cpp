// Structural fused multiply-add core: result = a * b + c with a single
// rounding (library extension — the paper's PEs round twice per MAC; fused
// MACs are where FPGA arithmetic went next, cf. the later DSP48 slices).
//
// Datapath (classic fused-MAC structure, swap-based):
//   1. shared denormalizer over all three operands
//   2. the multiplier's exact partial-product array (MULT18X18 + compressor
//      tree + full-width CPA) — the product is kept EXACT (2F+2 bits)
//   3. swap: the wider of {product, addend} anchors; the smaller aligns
//      through a double-width (128-bit) jam shifter
//   4. a double-width adder/subtractor in carry chunks
//   5. a double-width normalizer (split priority encoder + shifter)
//   6. the shared rounding tail
//
// Bit-exact with fp::fma under FpEnv::paper at every pipeline depth. The
// price of the single rounding is visible in the numbers: double-width
// alignment, addition, and normalization make the MAC bigger than the
// paper's adder and multiplier combined at the same depth (see
// bench/ext_fused_mac).
#include <cassert>

#include "fp/bits.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::units::detail {
namespace {

using fp::u128;
using fp::u64;
namespace sm = rtl::sem;

// Lanes. The 128-bit frames occupy lane pairs (lo, hi).
constexpr int kManA = 3;
constexpr int kManB = 4;
constexpr int kManC = 5;
constexpr int kExpC = 6;
constexpr int kCtl = 7;
constexpr int kBigLo = 8;    // anchor frame
constexpr int kBigHi = 9;
constexpr int kSmallLo = 10;  // aligning frame
constexpr int kSmallHi = 11;
constexpr int kExp = 12;   // running result exponent (biased, signed)
constexpr int kAux = 13;   // alignment distance, then normalize shift
constexpr int kCarry = 14;
constexpr int kPenc = 15;
constexpr int kGrs = 16;
constexpr int kKept = 17;
constexpr int kExpP = 18;  // product exponent before the swap

constexpr u64 kCtlSignP = 1u << 0;   // product sign (sa ^ sb)
constexpr u64 kCtlSignC = 1u << 1;
constexpr u64 kCtlInfP = 1u << 2;    // a or b infinite (and no zero)
constexpr u64 kCtlInfC = 1u << 3;
constexpr u64 kCtlZeroP = 1u << 4;   // a or b zero
constexpr u64 kCtlZeroC = 1u << 5;
constexpr u64 kCtlInvalid = 1u << 6;  // inf * 0, or inf - inf via c
constexpr u64 kCtlEffSub = 1u << 7;
constexpr u64 kCtlSignRes = 1u << 8;
constexpr u64 kCtlZeroRes = 1u << 9;
constexpr u64 kCtlSignBig = 1u << 10;   // sign of the anchor frame
constexpr u64 kCtlSignSmall = 1u << 11;
// IEEE-mode extension bits.
constexpr u64 kCtlNan = 1u << 12;
constexpr u64 kCtlSnan = 1u << 13;
constexpr u64 kCtlTiny = 1u << 14;
constexpr u64 kCtlItz = 1u << 15;  // inf * zero (invalid even beside NaN)

bool ctl(const rtl::SignalSet& s, u64 bit) { return (s[kCtl] & bit) != 0; }
void set_ctl(rtl::SignalSet& s, u64 bit, bool v) {
  if (v) {
    s[kCtl] |= bit;
  } else {
    s[kCtl] &= ~bit;
  }
}

u128 get128(const rtl::SignalSet& s, int lo_lane) {
  return (static_cast<u128>(s[lo_lane + 1]) << 64) | s[lo_lane];
}

void put128(rtl::SignalSet& s, int lo_lane, u128 v) {
  s[lo_lane] = static_cast<u64>(v);
  s[lo_lane + 1] = static_cast<u64>(v >> 64);
}

}  // namespace

rtl::PieceChain build_mac_chain(fp::FpFormat fmt, const UnitConfig& cfg) {
  const int F = fmt.frac_bits();
  const int E = fmt.exp_bits();
  const int N = fmt.total_bits();
  const int sig_bits = F + 1;
  const int prod_bits = 2 * sig_bits;
  const device::TechModel& tech = cfg.tech;
  const device::Objective obj = cfg.objective;
  const bool rne = cfg.rounding == fp::RoundingMode::kNearestEven;
  const bool ieee = cfg.ieee_mode;

  const int chunks = (sig_bits + 16) / 17;
  const int n_bmults = chunks * chunks;
  // Register-width terms by the effective-width convention: ctl reaches
  // bit 15 (kCtlItz) in both modes; ieee exponents are signed.
  const int ctl_w = 16;
  const int exp_c_w = ieee ? E + 2 : E;
  const int exp_p_w = ieee ? E + 2 : E + 1;
  int csa_levels = 0;
  for (int r = n_bmults; r > 1; r = (r + 3) / 4) ++csa_levels;

  rtl::PieceChain chain;

  // ---- denormalizer for three operands --------------------------------------
  {
    rtl::Piece p;
    p.name = "denorm3";
    p.group = "denorm";
    p.delay_ns = tech.comparator_delay(E, obj) + tech.gate_delay(obj) +
                 (ieee ? tech.priority_encoder_delay(F + 1, obj) : 0.0);
    p.area = tech.comparator_area(E, obj) * 6 +
             tech.lut_logic_area(F + 1, obj) * 3 +
             (ieee ? (tech.priority_encoder_area(F + 1, obj) +
                      tech.mux_level_area(F + 1, obj) * 6) *
                         3
                   : device::Resources{});
    p.live_bits = 3 * sig_bits + exp_c_w + exp_p_w + ctl_w;
    p.sem = {sm::read(kLaneInA), sm::read(kLaneInB), sm::read(kLaneInC),
             sm::havoc(kManA, sig_bits), sm::havoc(kManB, sig_bits),
             sm::havoc(kManC, sig_bits), sm::havoc(kCtl, ctl_w)};
    if (ieee) {
      p.sem.push_back(sm::havocs(kExpC, E + 2));
      p.sem.push_back(sm::havocs(kExpP, E + 2));
    } else {
      p.sem.push_back(sm::havoc(kExpC, E));
      p.sem.push_back(sm::havoc(kExpP, E + 1));
    }
    p.eval = [fmt, F, E, N, ieee](rtl::SignalSet& s) {
      const u64 emax_mask = fp::mask64(E);
      const int emax = (1 << E) - 1;
      bool any_nan = false, any_snan = false;
      auto unpack = [&](u64 enc, u64& man, int& e, bool& sign, bool& inf,
                        bool& zero) {
        enc &= fmt.bits_mask();
        e = static_cast<int>((enc >> F) & emax_mask);
        const u64 frac = enc & fp::mask64(F);
        sign = ((enc >> (N - 1)) & 1) != 0;
        if (ieee) {
          const bool nan = e == emax && frac != 0;
          any_nan |= nan;
          any_snan |= nan && ((enc >> (F - 1)) & 1) == 0;
          inf = e == emax && frac == 0;
          zero = e == 0 && frac == 0;
          man = e == 0 ? frac : (frac | (u64{1} << F));
          // Normalize honored subnormals right here (the operand
          // normalizer hardware is charged via the IEEE area below).
          if (e == 0 && frac != 0) {
            const int msb = fp::msb_index64(man);
            man <<= (F - msb);
            e = 1 - (F - msb);
          } else if (e == 0) {
            e = 1;
          }
        } else {
          man = e == 0 ? 0 : (frac | (u64{1} << F));
          inf = e == emax;  // NaN encodings read as infinity (paper policy)
          zero = e == 0;
        }
      };
      u64 ma, mb, mc;
      int ea, eb, ec;
      bool sa, sb, sc, ia, ib, ic, za, zb, zc;
      unpack(s[kLaneInA], ma, ea, sa, ia, za);
      unpack(s[kLaneInB], mb, eb, sb, ib, zb);
      unpack(s[kLaneInC], mc, ec, sc, ic, zc);
      s[kManA] = ma;
      s[kManB] = mb;
      s[kManC] = mc;
      s[kExpC] = static_cast<u64>(ec);
      s[kExpP] = static_cast<u64>(ea + eb);
      s[kCtl] = 0;
      set_ctl(s, kCtlNan, any_nan);
      set_ctl(s, kCtlSnan, any_snan);
      set_ctl(s, kCtlSignP, sa != sb);
      set_ctl(s, kCtlSignC, sc);
      const bool prod_inf = (ia || ib) && !(za || zb);
      set_ctl(s, kCtlInfP, prod_inf);
      set_ctl(s, kCtlInfC, ic);
      set_ctl(s, kCtlZeroP, za || zb);
      set_ctl(s, kCtlZeroC, zc);
      const bool inf_times_zero = (ia && zb) || (ib && za);
      const bool inf_conflict =
          prod_inf && ic && (sa != sb) != sc;
      set_ctl(s, kCtlItz, inf_times_zero);
      set_ctl(s, kCtlInvalid, inf_times_zero || inf_conflict);
    };
    chain.push_back(std::move(p));
  }

  // ---- exact product (shared structure with the multiplier) -----------------
  {
    rtl::Piece p;
    p.name = "bmult";
    p.group = "mantissa_mul";
    p.delay_ns = std::max(tech.bmult_delay(obj), tech.adder_delay(E, obj));
    p.area = tech.adder_area(E + 1, obj);
    p.area.bmults = n_bmults;
    p.live_bits = prod_bits + sig_bits + exp_c_w + exp_p_w + ctl_w;
    p.sem = {sm::read(kManA), sm::read(kManB),
             sm::havoc(kBigLo, std::min(prod_bits, 64)),
             sm::havoc(kBigHi, std::max(0, prod_bits - 64)),
             sm::subi(kExpP, kExpP, fmt.bias())};
    const int bias = fmt.bias();
    p.eval = [chunks, bias](rtl::SignalSet& s) {
      u128 prod = 0;
      for (int i = 0; i < chunks; ++i) {
        const u64 ca = (s[kManA] >> (17 * i)) & fp::mask64(17);
        if (ca == 0) continue;
        for (int j = 0; j < chunks; ++j) {
          const u64 cb = (s[kManB] >> (17 * j)) & fp::mask64(17);
          prod += static_cast<u128>(ca * cb) << (17 * (i + j));
        }
      }
      put128(s, kBigLo, prod);  // staging; the swap reassigns frames
      // Exponent bias subtract rides with the array (parallel in hardware).
      s[kExpP] = static_cast<u64>(static_cast<fp::i64>(s[kExpP]) - bias);
    };
    chain.push_back(std::move(p));
  }
  for (int l = 0; l < csa_levels; ++l) {
    rtl::Piece p;
    p.name = "csa_l" + std::to_string(l);
    p.group = "mantissa_mul";
    p.delay_ns = tech.csa_level_delay(prod_bits, obj);
    p.delay_chained_ns = tech.csa_level_chained_delay(prod_bits, obj);
    p.area = tech.csa_level_area(prod_bits, obj);
    p.live_bits = prod_bits + sig_bits + exp_c_w + exp_p_w + ctl_w;
    p.sem = {sm::nop()};
    p.eval = [](rtl::SignalSet&) {
      // Carry-save value progresses; already exact in the lanes.
    };
    chain.push_back(std::move(p));
  }
  // Full-width CPA: the fused datapath needs every product bit resolved.
  {
    const int n_cpa = std::max(1, (prod_bits + 15) / 16);
    const int cpa_chunk = (prod_bits + n_cpa - 1) / n_cpa;
    for (int c = 0; c < n_cpa; ++c) {
      rtl::Piece p;
      p.name = "cpa_c" + std::to_string(c);
      p.group = "cpa";
      p.delay_ns = tech.adder_delay(cpa_chunk, obj);
      if (c > 0) p.delay_chained_ns = tech.adder_chained_delay(cpa_chunk, obj);
      p.area = tech.adder_area(cpa_chunk, obj);
      p.live_bits = prod_bits + sig_bits + exp_c_w + exp_p_w + ctl_w;
      p.sem = {sm::nop()};
      p.eval = [](rtl::SignalSet&) {};  // value already exact in the lanes
      chain.push_back(std::move(p));
    }
  }

  // ---- swap: anchor the larger of product / addend ---------------------------
  // Working frames carry GRS: product frame = prod << 3 (value scale
  // 2^(expP - bias - 2F - 3)); addend frame = man_c << (F + 3).
  const int frame_bits = prod_bits + 4;  // max meaningful width
  {
    rtl::Piece p;
    p.name = "fma_swap";
    p.group = "align";
    p.delay_ns = std::max(tech.comparator_delay(E + 2, obj),
                          tech.mux_level_delay(frame_bits, obj)) +
                 tech.adder_delay(E + 1, obj);
    p.area = tech.comparator_area(E + 2, obj) +
             tech.mux_level_area(2 * frame_bits, obj) +
             tech.adder_area(E + 1, obj);
    p.live_bits = 2 * frame_bits + (E + 1) + 7 + ctl_w;
    p.sem = {sm::read(kBigLo), sm::read(kBigHi), sm::read(kManC),
             sm::read(kExpP),  sm::read(kExpC),  sm::read(kCtl),
             sm::havoc(kBigLo, std::min(frame_bits, 64)),
             sm::havoc(kBigHi, std::max(0, frame_bits - 64)),
             sm::havoc(kSmallLo, std::min(frame_bits, 64)),
             sm::havoc(kSmallHi, std::max(0, frame_bits - 64)),
             sm::havocs(kExp, E + 2), sm::havoc(kAux, 7),
             sm::havoc(kCtl, ctl_w)};
    const int F_ = F;
    p.eval = [F_](rtl::SignalSet& s) {
      const u128 prod = get128(s, kBigLo) << 3;
      const u128 cfrm = static_cast<u128>(s[kManC]) << (F_ + 3);
      const fp::i64 exp_p = static_cast<fp::i64>(s[kExpP]);
      const fp::i64 exp_c = static_cast<fp::i64>(s[kExpC]);
      // Anchor by EXPONENT (the subtract order is decided after alignment,
      // like the reference); a zero frame never anchors, so tiny nonzero
      // operands are not jammed away against it.
      bool p_big;
      fp::i64 d;
      if (cfrm == 0) {
        p_big = true;
        d = 0;
      } else if (prod == 0) {
        p_big = false;
        d = 0;
      } else {
        p_big = exp_p >= exp_c;
        d = p_big ? exp_p - exp_c : exp_c - exp_p;
      }
      put128(s, kBigLo, p_big ? prod : cfrm);
      put128(s, kSmallLo, p_big ? cfrm : prod);
      s[kExp] = static_cast<u64>(p_big ? exp_p : exp_c);
      s[kAux] = static_cast<u64>(d > 127 ? 127 : d);
      const bool sign_p = ctl(s, kCtlSignP);
      const bool sign_c = ctl(s, kCtlSignC);
      set_ctl(s, kCtlEffSub, sign_p != sign_c);
      set_ctl(s, kCtlSignBig, p_big ? sign_p : sign_c);
      set_ctl(s, kCtlSignSmall, p_big ? sign_c : sign_p);
    };
    chain.push_back(std::move(p));
  }

  // ---- double-width alignment shifter ----------------------------------------
  const int align_levels = 7;  // up to 127-bit jam shift
  for (int l = 0; l < align_levels; ++l) {
    rtl::Piece p;
    p.name = "align_l" + std::to_string(l);
    p.group = "align";
    p.delay_ns = tech.mux_level_delay(frame_bits, obj);
    p.delay_chained_ns = tech.mux_level_chained_delay(frame_bits, obj);
    p.area = tech.mux_level_area(frame_bits, obj);
    p.live_bits = 2 * frame_bits + (E + 1) +
                  (l + 1 < align_levels ? 7 : 0) + ctl_w;
    p.sem = {sm::read(kAux), sm::read(kSmallLo), sm::read(kSmallHi),
             sm::havoc(kSmallLo, std::min(frame_bits, 64)),
             sm::havoc(kSmallHi, std::max(0, frame_bits - 64))};
    p.eval = [l](rtl::SignalSet& s) {
      if ((s[kAux] >> l) & 1) {
        put128(s, kSmallLo, fp::shift_right_jam128(get128(s, kSmallLo),
                                                   1 << l));
      }
    };
    chain.push_back(std::move(p));
  }

  // ---- double-width adder/subtractor in carry chunks -------------------------
  {
    const int n_chunks = (frame_bits + 15) / 16;
    for (int c = 0; c < n_chunks; ++c) {
      rtl::Piece p;
      p.name = "msum_c" + std::to_string(c);
      p.group = "mantissa_add";
      const int bits =
          std::min(16, frame_bits - c * 16) > 0
              ? std::min(16, frame_bits - c * 16)
              : 16;
      p.delay_ns = tech.adder_delay(bits, obj);
      if (c > 0) p.delay_chained_ns = tech.adder_chained_delay(bits, obj);
      p.area = tech.adder_area(bits, obj);
      const bool last = c == n_chunks - 1;
      // A register inside the chunk sequence still holds BOTH frames (the
      // sum only replaces them once the final carry resolves); after the
      // last chunk the (frame+1)-bit sum alone remains.
      // Both frames are bounded by 2^(prod_bits+3), so the resolved sum
      // still fits the frame width.
      p.live_bits =
          (last ? frame_bits : 2 * frame_bits) + (E + 1) + ctl_w;
      if (last) {
        p.sem = {sm::read(kBigLo),   sm::read(kBigHi),
                 sm::read(kSmallLo), sm::read(kSmallHi),
                 sm::read(kCtl),
                 sm::havoc(kBigLo, std::min(frame_bits, 64)),
                 sm::havoc(kBigHi, std::max(0, frame_bits - 64)),
                 sm::havoc(kCtl, ctl_w)};
      } else {
        p.sem = {sm::nop()};
      }
      p.eval = [last](rtl::SignalSet& s) {
        if (!last) return;  // the full op resolves with the final carry
        const u128 big = get128(s, kBigLo);
        const u128 small = get128(s, kSmallLo);
        u128 sum;
        if (ctl(s, kCtlEffSub)) {
          // Equal exponents can leave the "small" side larger: the aligned
          // compare decides both the order and the result sign.
          if (big == small) {
            set_ctl(s, kCtlZeroRes, true);
            sum = 0;
          } else if (big > small) {
            sum = big - small;
            set_ctl(s, kCtlSignRes, ctl(s, kCtlSignBig));
          } else {
            sum = small - big;
            set_ctl(s, kCtlSignRes, ctl(s, kCtlSignSmall));
          }
        } else {
          sum = big + small;
          set_ctl(s, kCtlSignRes, ctl(s, kCtlSignBig));
        }
        put128(s, kBigLo, sum);
      };
      chain.push_back(std::move(p));
    }
  }

  // ---- double-width normalizer -----------------------------------------------
  {
    rtl::Piece p;
    p.name = "penc128";
    p.group = "normalize";
    // Two half-width encoders + combine, like the adder's, but double wide.
    p.delay_ns = tech.priority_encoder_delay(frame_bits / 2, obj) +
                 tech.adder_chained_delay(4, obj);
    p.area = tech.priority_encoder_area(frame_bits / 2, obj) * 2 +
             tech.adder_area(4, obj);
    p.live_bits = frame_bits + (E + 1) + 8 + ctl_w;
    p.sem = {sm::read(kBigLo), sm::read(kBigHi), sm::havocs(kPenc, 8)};
    const int F_ = F;
    p.eval = [F_](rtl::SignalSet& s) {
      const u128 sum = get128(s, kBigLo);
      if (sum == 0) return;
      const int msb = 127 - fp::clz128(sum);
      // Required shift to put the msb at F+3 (negative = shift left).
      s[kPenc] = static_cast<u64>(
          static_cast<fp::i64>(msb - (F_ + 3)));
    };
    chain.push_back(std::move(p));
  }
  {
    rtl::Piece p;
    p.name = "norm_exp";
    p.group = "normalize";
    p.delay_ns = tech.adder_delay(E + 1, obj);
    p.area = tech.adder_area(E + 1, obj);
    p.live_bits = frame_bits + (E + 2) + 8 + ctl_w;
    p.sem = {sm::subi(kExp, kExp, F), sm::add(kExp, kExp, kPenc)};
    const int F_ = F;
    p.eval = [F_](rtl::SignalSet& s) {
      // round_pack semantics: value = sig * 2^(exp - bias - F - 3) with the
      // frame at 2^(exp - bias - 2F - 3): e64 = exp - F + (msb - (F+3)).
      s[kExp] = static_cast<u64>(static_cast<fp::i64>(s[kExp]) - F_ +
                                 static_cast<fp::i64>(s[kPenc]));
    };
    chain.push_back(std::move(p));
  }
  for (int l = 0; l < align_levels; ++l) {
    rtl::Piece p;
    p.name = "norm_l" + std::to_string(l);
    p.group = "norm_shift";
    p.delay_ns = tech.mux_level_delay(frame_bits, obj);
    if (l > 0) {
      p.delay_chained_ns = tech.mux_level_chained_delay(frame_bits, obj);
    }
    p.area = tech.mux_level_area(frame_bits, obj);
    // After the last level the high frame lane is dead (rounding reads
    // only the low lane) and the normalized value fits F+4 bits.
    p.live_bits = l + 1 < align_levels
                      ? frame_bits + (E + 2) + 8 + ctl_w
                      : (F + 4) + (E + 2) + ctl_w;
    p.sem = {sm::read(kPenc), sm::read(kBigLo), sm::read(kBigHi),
             sm::havoc(kBigLo, std::min(frame_bits, 64)),
             sm::havoc(kBigHi, std::max(0, frame_bits - 64))};
    p.eval = [l](rtl::SignalSet& s) {
      const fp::i64 shift = static_cast<fp::i64>(s[kPenc]);
      const fp::i64 mag = shift < 0 ? -shift : shift;
      if ((mag >> l) & 1) {
        u128 sum = get128(s, kBigLo);
        if (shift > 0) {
          sum = fp::shift_right_jam128(sum, 1 << l);
        } else {
          sum <<= (1 << l);
        }
        put128(s, kBigLo, sum);
      }
    };
    chain.push_back(std::move(p));
  }

  // ---- IEEE mode only: gradual-underflow denormalizer -----------------------
  if (ieee) {
    const int wlvls = fp::msb_index64(static_cast<u64>(F + 4)) + 1;
    {
      rtl::Piece p;
      p.name = "tiny_detect";
      p.group = "denorm_result";
      p.delay_ns = tech.adder_delay(E + 1, obj);
      p.area = tech.adder_area(E + 1, obj) + tech.comparator_area(E, obj);
      p.live_bits = (F + 4) + (E + 2) + wlvls + ctl_w;
      p.sem = {sm::read(kExp), sm::read(kBigLo), sm::read(kCtl),
               sm::havoc(kAux, wlvls), sm::havoc(kCtl, ctl_w)};
      const int wmax = F + 4;
      p.eval = [wmax](rtl::SignalSet& s) {
        const fp::i64 exp = static_cast<fp::i64>(s[kExp]);
        if (exp <= 0 && s[kBigLo] != 0 && !ctl(s, kCtlZeroRes)) {
          set_ctl(s, kCtlTiny, true);
          const fp::i64 shift = 1 - exp;
          s[kAux] = static_cast<u64>(shift > wmax ? wmax : shift);
        } else {
          s[kAux] = 0;
        }
      };
      chain.push_back(std::move(p));
    }
    for (int l = 0; l < wlvls; ++l) {
      rtl::Piece p;
      p.name = "denorm_l" + std::to_string(l);
      p.group = "denorm_result";
      p.delay_ns = tech.mux_level_delay(F + 4, obj);
      p.delay_chained_ns = tech.mux_level_chained_delay(F + 4, obj);
      p.area = tech.mux_level_area(F + 4, obj);
      p.live_bits = (F + 4) + (E + 2) + (l + 1 < wlvls ? wlvls : 0) + ctl_w;
      p.sem = {sm::onif(sm::shrjam(kBigLo, kBigLo, 1 << l), kAux, l)};
      p.eval = [l](rtl::SignalSet& s) {
        if ((s[kAux] >> l) & 1) {
          s[kBigLo] = fp::shift_right_jam64(s[kBigLo], 1 << l);
        }
      };
      chain.push_back(std::move(p));
    }
  }

  // ---- rounding tail ----------------------------------------------------------
  const int rm_bits = F + 2;
  const int rm_chunks = (rm_bits + 13) / 14;
  for (int c = 0; c < rm_chunks; ++c) {
    const int bits = (rm_bits + rm_chunks - 1) / rm_chunks;
    rtl::Piece p;
    p.name = "round_mant_c" + std::to_string(c);
    p.group = "round";
    p.delay_ns = tech.adder_delay(bits, obj);
    if (c > 0) p.delay_chained_ns = tech.adder_chained_delay(bits, obj);
    p.area = tech.adder_area(bits, obj);
    const bool last = c == rm_chunks - 1;
    p.live_bits = last ? (E + 2) + (F + 2) + 3 + ctl_w
                       : (E + 2) + (F + 4) + ctl_w;
    if (last) {
      p.sem = {sm::read(kBigLo), sm::band(kGrs, kBigLo, 7),
               sm::havoc(kKept, F + 2)};
    } else {
      p.sem = {sm::nop()};
    }
    p.eval = [rne, last](rtl::SignalSet& s) {
      if (!last) return;
      const u64 work = s[kBigLo];  // normalized: fits the low lane
      const u64 grs = work & 7;
      u64 kept = work >> 3;
      bool inc = false;
      if (rne) inc = grs > 4 || (grs == 4 && (kept & 1) != 0);
      s[kGrs] = grs;
      s[kKept] = kept + (inc ? 1 : 0);
    };
    chain.push_back(std::move(p));
  }
  {
    rtl::Piece p;
    p.name = "pack";
    p.group = "round";
    p.delay_ns = tech.adder_delay(E, obj) + tech.lut_logic_delay(obj);
    p.area = tech.adder_area(E, obj) + tech.comparator_area(E, obj) * 2 +
             tech.lut_logic_area(N, obj);
    p.live_bits = N + 5;
    p.sem = {sm::read(kCtl), sm::read(kExp), sm::read(kKept), sm::read(kGrs),
             sm::havoc(kLaneResult, N), sm::flags()};
    p.eval = [fmt, F, E, rne, N, ieee](rtl::SignalSet& s) {
      const int emax = (1 << E) - 1;
      const u64 sign_mask = u64{1} << (N - 1);
      std::uint8_t flags = 0;
      u64 result = 0;
      const bool sign_p = ctl(s, kCtlSignP);
      const bool sign_c = ctl(s, kCtlSignC);
      bool datapath = false;
      result = 0;
      if (ieee && (ctl(s, kCtlNan) || ctl(s, kCtlInvalid))) {
        // NaN result; invalid for signaling NaNs, inf*0 (even beside a
        // quiet NaN), and inf-inf conflicts.
        if (ctl(s, kCtlSnan) || ctl(s, kCtlItz) ||
            (!ctl(s, kCtlNan) && ctl(s, kCtlInvalid))) {
          flags |= fp::kFlagInvalid;
        }
        result = fmt.exp_mask() | fmt.quiet_bit();
      } else if (ieee && ctl(s, kCtlTiny) && !ctl(s, kCtlInfP) &&
                 !ctl(s, kCtlInfC) && !ctl(s, kCtlZeroRes)) {
        const bool sign = ctl(s, kCtlSignRes);
        if (s[kGrs] != 0) {
          flags |= fp::kFlagInexact | fp::kFlagUnderflow;
        }
        result = s[kKept] | (sign ? sign_mask : 0);
      } else if (ctl(s, kCtlInvalid)) {
        flags |= fp::kFlagInvalid;
        result = fmt.exp_mask();  // +inf (no NaN support)
      } else if (ctl(s, kCtlInfP)) {
        result = fmt.exp_mask() | (sign_p ? sign_mask : 0);
      } else if (ctl(s, kCtlInfC)) {
        result = fmt.exp_mask() | (sign_c ? sign_mask : 0);
      } else if (ctl(s, kCtlZeroP) && ctl(s, kCtlZeroC)) {
        result = (sign_p == sign_c && sign_p) ? sign_mask : 0;
      } else if (ctl(s, kCtlZeroRes)) {
        result = 0;  // exact cancellation: +0 under RNE/truncation
      } else {
        // Normal path — including a zero product, where the addend rode
        // the datapath unscathed (aligned against a zero frame).
        datapath = true;
      }
      if (datapath) {
        const bool sign = ctl(s, kCtlSignRes);
        fp::i64 exp = static_cast<fp::i64>(s[kExp]);
        u64 kept = s[kKept];
        if (exp <= 0) {
          flags |= fp::kFlagUnderflow | fp::kFlagInexact;
          result = sign ? sign_mask : 0;
        } else {
          if ((kept >> (F + 1)) & 1) {
            kept >>= 1;
            exp += 1;
          }
          if (s[kGrs] != 0) flags |= fp::kFlagInexact;
          if (exp >= emax) {
            flags |= fp::kFlagOverflow | fp::kFlagInexact;
            result = rne ? fmt.exp_mask()
                         : ((static_cast<u64>(emax - 1) << F) |
                            fp::mask64(F));
            if (sign) result |= sign_mask;
          } else {
            result = (static_cast<u64>(exp) << F) | (kept & fp::mask64(F));
            if (sign) result |= sign_mask;
          }
        }
      }
      s[kLaneResult] = result;
      s.flags = flags;
    };
    chain.push_back(std::move(p));
  }

  assert(!chain.empty());
  return chain;
}

}  // namespace flopsim::units::detail
