// Structural floating-point adder/subtractor, following the paper's block
// diagram (Figure 1a) and subunit descriptions verbatim:
//
//   stage 1  denormalization/preshifting
//            - denormalizer (exp==0 comparators, hidden bit insertion; with
//              the paper's policy a subnormal input flushes to zero)
//            - swapper (magnitude comparator + mux; a pipeline register may
//              sit between comparator and mux)
//            - aligner (barrel shifter, one piece per mux level; the paper
//              groups ~3 levels per stage at 200 MHz)
//   stage 2  fixed-point mantissa adder/subtractor (carry-chain chunks, the
//            library-core "number of pipeline stages as a parameter") and
//            the pre-normalizer (1-bit shift on carry-out + exponent +1)
//   stage 3  normalizer (priority encoder split into two halves + combine,
//            exponent subtract, left barrel shifter) and rounding (constant
//            adders for mantissa and exponent)
//
// Exceptions are detected where they arise, carried forward in control
// lanes, and assembled into the flag byte in the final piece; DONE is the
// simulator's valid bit. Results are bit-exact with fp::add/sub under
// FpEnv::paper at every pipeline depth.
#include <cassert>

#include "fp/bits.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::units::detail {
namespace {

using fp::u64;
namespace sm = rtl::sem;

// Lane assignments (see fp_unit.hpp for the input/output convention).
constexpr int kExpA = 3;   // biased exponent of A; later: running exponent
constexpr int kExpB = 4;
constexpr int kManA = 5;   // significand incl. hidden bit; later: manBigExt
constexpr int kManB = 6;   // later: manSmallExt
constexpr int kCtl = 7;    // control bits, see below
constexpr int kAux = 8;    // aLarger, then clamped alignment distance
constexpr int kSum = 9;    // mantissa datapath result (W+1 bits)
constexpr int kCarry = 10; // ripple carry between adder chunks
constexpr int kPenc = 11;  // priority-encoder intermediate, then lz
constexpr int kGrs = 12;   // guard/round/sticky bits
constexpr int kKept = 13;  // rounded significand

// kCtl bits.
constexpr u64 kCtlSignA = 1u << 0;
constexpr u64 kCtlSignB = 1u << 1;  // effective sign (op folded in)
constexpr u64 kCtlInfA = 1u << 2;
constexpr u64 kCtlInfB = 1u << 3;
constexpr u64 kCtlEffSub = 1u << 4;
constexpr u64 kCtlSignRes = 1u << 5;
constexpr u64 kCtlZeroRes = 1u << 6;
// IEEE-mode extension bits.
constexpr u64 kCtlNan = 1u << 7;    // some input is NaN
constexpr u64 kCtlSnan = 1u << 8;   // some input is a signaling NaN
constexpr u64 kCtlTiny = 1u << 9;   // result below the normal range

bool ctl(const rtl::SignalSet& s, u64 bit) { return (s[kCtl] & bit) != 0; }
void set_ctl(rtl::SignalSet& s, u64 bit, bool v) {
  if (v) {
    s[kCtl] |= bit;
  } else {
    s[kCtl] &= ~bit;
  }
}

}  // namespace

rtl::PieceChain build_adder_chain(fp::FpFormat fmt, const UnitConfig& cfg) {
  const int F = fmt.frac_bits();
  const int E = fmt.exp_bits();
  const int N = fmt.total_bits();
  const int W = F + 4;  // working mantissa width: hidden + frac + GRS
  // Barrel-shifter depth; also the width of a clamped shift distance.
  const int levels = fp::msb_index64(static_cast<u64>(W)) + 1;
  // Width of the normalizer's left-shift distance (at most F + 3).
  const int penc_w = fp::msb_index64(static_cast<u64>(F + 3)) + 1;
  const device::TechModel& tech = cfg.tech;
  const device::Objective obj = cfg.objective;
  const bool rne = cfg.rounding == fp::RoundingMode::kNearestEven;
  const bool ieee = cfg.ieee_mode;

  rtl::PieceChain chain;

  // ---- denormalizer --------------------------------------------------------
  // Two exp==0 comparators (flush + hidden bit) and two exp==max detectors.
  {
    rtl::Piece p;
    p.name = "denorm";
    p.group = "denorm";
    p.delay_ns = tech.comparator_delay(E, obj) + tech.gate_delay(obj);
    p.area = tech.comparator_area(E, obj) * 4 + tech.lut_logic_area(F + 1, obj) * 2;
    p.live_bits = 2 * (E + (F + 1)) + (ieee ? 9 : 4);
    p.sem = {sm::read(kLaneInA), sm::read(kLaneInB), sm::read(kLaneInCtl),
             sm::havoc(kManA, F + 1), sm::havoc(kManB, F + 1),
             sm::havoc(kExpA, E),     sm::havoc(kExpB, E),
             sm::havoc(kCtl, ieee ? 9 : 4)};
    p.eval = [fmt, F, E, N, ieee](rtl::SignalSet& s) {
      const u64 a = s[kLaneInA] & fmt.bits_mask();
      const u64 b = s[kLaneInB] & fmt.bits_mask();
      const bool sub = (s[kLaneInCtl] & 1) != 0;
      const u64 frac_mask = fp::mask64(F);
      const int emax = (1 << E) - 1;
      const int ea = static_cast<int>((a >> F) & fp::mask64(E));
      const int eb = static_cast<int>((b >> F) & fp::mask64(E));
      s[kCtl] = 0;
      if (ieee) {
        // Gradual underflow: subnormal significands keep their bits with
        // the hidden bit clear and an effective exponent of 1.
        s[kManA] = ea == 0 ? (a & frac_mask)
                           : ((a & frac_mask) | (u64{1} << F));
        s[kManB] = eb == 0 ? (b & frac_mask)
                           : ((b & frac_mask) | (u64{1} << F));
        s[kExpA] = static_cast<u64>(ea == 0 ? 1 : ea);
        s[kExpB] = static_cast<u64>(eb == 0 ? 1 : eb);
        const bool nan_a = ea == emax && (a & frac_mask) != 0;
        const bool nan_b = eb == emax && (b & frac_mask) != 0;
        set_ctl(s, kCtlNan, nan_a || nan_b);
        set_ctl(s, kCtlSnan,
                (nan_a && ((a >> (F - 1)) & 1) == 0) ||
                    (nan_b && ((b >> (F - 1)) & 1) == 0));
        set_ctl(s, kCtlInfA, ea == emax && (a & frac_mask) == 0);
        set_ctl(s, kCtlInfB, eb == emax && (b & frac_mask) == 0);
      } else {
        // exp==0: flush to zero (no subnormal support); exp==max: infinity
        // (NaN encodings are not distinguished — no NaN support).
        s[kManA] = ea == 0 ? 0 : ((a & frac_mask) | (u64{1} << F));
        s[kManB] = eb == 0 ? 0 : ((b & frac_mask) | (u64{1} << F));
        s[kExpA] = static_cast<u64>(ea);
        s[kExpB] = static_cast<u64>(eb);
        set_ctl(s, kCtlInfA, ea == emax);
        set_ctl(s, kCtlInfB, eb == emax);
      }
      set_ctl(s, kCtlSignA, (a >> (N - 1)) & 1);
      set_ctl(s, kCtlSignB, ((b >> (N - 1)) & 1) ^ static_cast<u64>(sub));
    };
    chain.push_back(std::move(p));
  }

  // ---- swapper: magnitude comparator, then mux -----------------------------
  {
    rtl::Piece p;
    p.name = "magcmp";
    p.group = "swap";
    // Compares {exp, mantissa}: an (N-1)-bit magnitude comparator — the
    // paper's "mantissa comparator for double precision can achieve 220MHz".
    p.delay_ns = tech.comparator_delay(N - 1, obj);
    p.area = tech.comparator_area(N - 1, obj);
    p.live_bits = 2 * (E + (F + 1)) + (ieee ? 9 : 4) + 1;
    p.sem = {sm::read(kManA), sm::read(kManB), sm::cmp(kAux, kExpA, kExpB)};
    p.eval = [](rtl::SignalSet& s) {
      const bool a_larger =
          (s[kExpA] > s[kExpB]) ||
          (s[kExpA] == s[kExpB] && s[kManA] >= s[kManB]);
      s[kAux] = a_larger ? 1 : 0;
    };
    chain.push_back(std::move(p));
  }
  {
    rtl::Piece p;
    p.name = "swap_mux";
    p.group = "swap";
    // Mux of both operands plus, in parallel, the exponent subtractor that
    // produces the alignment distance.
    p.delay_ns =
        std::max(tech.mux_level_delay(F + 1, obj), tech.adder_delay(E, obj));
    p.area = tech.mux_level_area(2 * (F + 1), obj) + tech.adder_area(E, obj);
    p.live_bits = E + 2 * W + levels + (ieee ? 9 : 6);
    // Both mantissa lanes end up holding one of the two (shifted) operands;
    // havoc at the extended width W contains either choice, so the mux
    // needs no lane-swap modeling.
    p.sem = {sm::read(kCtl),  sm::read(kManA), sm::read(kManB),
             sm::read(kExpB), sm::select(kExpA, kAux, 0, kExpA, kExpB),
             sm::havoc(kManA, W), sm::havoc(kManB, W),
             sm::havoc(kAux, levels), sm::havoc(kCtl, ieee ? 9 : 6)};
    p.eval = [W](rtl::SignalSet& s) {
      const bool a_larger = s[kAux] != 0;
      const u64 man_big = a_larger ? s[kManA] : s[kManB];
      const u64 man_small = a_larger ? s[kManB] : s[kManA];
      const u64 exp_big = a_larger ? s[kExpA] : s[kExpB];
      const u64 exp_small = a_larger ? s[kExpB] : s[kExpA];
      const bool sign_a = ctl(s, kCtlSignA);
      const bool sign_b = ctl(s, kCtlSignB);
      set_ctl(s, kCtlEffSub, sign_a != sign_b);
      set_ctl(s, kCtlSignRes, a_larger ? sign_a : sign_b);
      s[kExpA] = exp_big;  // running exponent from here on
      s[kManA] = man_big << 3;
      s[kManB] = man_small << 3;
      u64 d = exp_big - exp_small;
      if (d > static_cast<u64>(W)) d = static_cast<u64>(W);
      s[kAux] = d;
    };
    chain.push_back(std::move(p));
  }

  // ---- alignment barrel shifter (right, with sticky jam) -------------------
  for (int l = 0; l < levels; ++l) {
    rtl::Piece p;
    p.name = "align_l" + std::to_string(l);
    p.group = "align";
    p.delay_ns = tech.mux_level_delay(W, obj);
    if (l > 0) p.delay_chained_ns = tech.mux_level_chained_delay(W, obj);
    p.area = tech.mux_level_area(W, obj);
    // The distance register keeps its full width until every level has
    // consumed its bit (effective width counts up to the top demanded bit).
    p.live_bits = E + 2 * W + (l + 1 < levels ? levels : 0) + (ieee ? 9 : 6);
    p.sem = {sm::onif(sm::shrjam(kManB, kManB, 1 << l), kAux, l)};
    p.eval = [l](rtl::SignalSet& s) {
      if ((s[kAux] >> l) & 1) {
        s[kManB] = fp::shift_right_jam64(s[kManB], 1 << l);
      }
    };
    chain.push_back(std::move(p));
  }

  // ---- fixed-point mantissa adder/subtractor (carry chunks) ----------------
  const int add_bits = W;  // operand width; result is W+1 bits
  const int n_chunks = (add_bits + 13) / 14;
  const int chunk_bits = (add_bits + n_chunks - 1) / n_chunks;
  for (int c = 0; c < n_chunks; ++c) {
    const int lo = c * chunk_bits;
    const int hi = std::min(add_bits, lo + chunk_bits);
    rtl::Piece p;
    p.name = "madd_c" + std::to_string(c);
    p.group = "mantissa_add";
    p.delay_ns = tech.adder_delay(hi - lo, obj);
    if (c > 0) p.delay_chained_ns = tech.adder_chained_delay(hi - lo, obj);
    p.area = tech.adder_area(hi - lo, obj);
    p.cut_after = true;
    const bool first = c == 0;
    const bool last = c == n_chunks - 1;
    // Mid-ripple both operand lanes stay live in full (later chunks still
    // read them), the sum has accumulated hi bits, and the carry is one
    // bit. After the last chunk only the exponent, the W+1-bit sum, and
    // control survive.
    p.live_bits = last ? E + (W + 1) + (ieee ? 9 : 6)
                       : E + 2 * W + hi + 1 + (ieee ? 9 : 6);
    p.sem = {sm::read(kManA), sm::read(kManB), sm::read(kCtl)};
    if (!first) {
      p.sem.push_back(sm::read(kSum));
      p.sem.push_back(sm::read(kCarry));
    }
    p.sem.push_back(sm::havoc(kSum, last ? W + 1 : hi));
    p.sem.push_back(sm::havoc(kCarry, 1));
    p.eval = [lo, hi, first, last, W](rtl::SignalSet& s) {
      const bool eff_sub = ctl(s, kCtlEffSub);
      if (first) {
        s[kSum] = 0;
        s[kCarry] = eff_sub ? 1 : 0;  // two's complement +1
      }
      const u64 m = fp::mask64(hi - lo);
      const u64 x = (s[kManA] >> lo) & m;
      const u64 yraw = (s[kManB] >> lo) & m;
      const u64 y = eff_sub ? (~yraw & m) : yraw;
      const u64 t = x + y + s[kCarry];
      s[kSum] |= (t & m) << lo;
      s[kCarry] = t >> (hi - lo);
      if (last && !eff_sub) {
        s[kSum] |= s[kCarry] << W;  // carry-out becomes bit W
      }
    };
    chain.push_back(std::move(p));
  }

  // ---- pre-normalizer: 1-bit shift on carry-out + exponent increment -------
  {
    rtl::Piece p;
    p.name = "prenorm";
    p.group = "mantissa_add";
    p.delay_ns =
        std::max(tech.mux_level_delay(W, obj), tech.adder_delay(E, obj));
    p.area = tech.mux_level_area(W, obj) + tech.adder_area(E, obj);
    p.live_bits = E + 1 + (W + 1) + (ieee ? 9 : 6);
    // The exponent bump must be modeled before the shift: the jam clears
    // the guard bit the shared condition tests.
    p.sem = {sm::onif(sm::addi(kExpA, kExpA, 1), kSum, W),
             sm::onif(sm::shrjam(kSum, kSum, 1), kSum, W)};
    p.eval = [W](rtl::SignalSet& s) {
      if ((s[kSum] >> W) & 1) {
        s[kSum] = fp::shift_right_jam64(s[kSum], 1);
        s[kExpA] += 1;
      }
    };
    chain.push_back(std::move(p));
  }

  // ---- normalizer: split priority encoder + exponent adjust + left shift ---
  {
    rtl::Piece p;
    p.name = "penc_hi";
    p.group = "normalize";
    p.delay_ns = tech.priority_encoder_delay((W + 1) / 2, obj);
    p.area = tech.priority_encoder_area((W + 1) / 2, obj);
    p.live_bits = E + 1 + W + 9 + (ieee ? 9 : 6);
    p.sem = {sm::read(kSum), sm::havoc(kPenc, 9)};
    p.eval = [W](rtl::SignalSet& s) {
      // Encode the leading one within the upper half [W/2, W).
      const int half = W / 2;
      // Found-flag in bit 8 above the 8-bit index — the 9-bit encoding the
      // hardware encoder actually produces (a sign-bit style flag would
      // occupy a full 64-bit lane in the register-width accounting).
      const u64 hi_bits = s[kSum] >> half;
      s[kPenc] = hi_bits != 0
                     ? (u64{1} << 8) | static_cast<u64>(
                                           half + fp::msb_index64(hi_bits))
                     : 0;
    };
    chain.push_back(std::move(p));
  }
  {
    rtl::Piece p;
    p.name = "penc_lo";
    p.group = "normalize";
    // Lower-half encoder plus the small combining adder the paper describes.
    p.delay_ns = tech.priority_encoder_delay((W + 1) / 2, obj) +
                 tech.adder_chained_delay(3, obj);
    // When fused with penc_hi in one stage the two halves run in parallel
    // and only the combining adder adds delay.
    p.delay_chained_ns = tech.adder_chained_delay(3, obj);
    p.area = tech.priority_encoder_area((W + 1) / 2, obj) +
             tech.adder_area(4, obj);
    p.live_bits = E + 1 + W + penc_w + (ieee ? 9 : 7);
    p.sem = {sm::read(kPenc), sm::read(kSum), sm::read(kCtl),
             sm::havoc(kPenc, penc_w), sm::havoc(kCtl, ieee ? 9 : 7)};
    p.eval = [F, W](rtl::SignalSet& s) {
      int msb;
      if (s[kPenc] >> 8) {
        msb = static_cast<int>(s[kPenc] & fp::mask64(8));
      } else if (s[kSum] != 0) {
        msb = fp::msb_index64(s[kSum] & fp::mask64(W / 2));
      } else {
        set_ctl(s, kCtlZeroRes, true);
        s[kPenc] = 0;
        return;
      }
      s[kPenc] = static_cast<u64>((F + 3) - msb);  // left-shift distance
    };
    chain.push_back(std::move(p));
  }
  {
    rtl::Piece p;
    p.name = "norm_exp";
    p.group = "normalize";
    p.delay_ns = tech.adder_delay(E, obj);
    p.area = tech.adder_area(E, obj);
    p.live_bits = (E + 1) + W + penc_w + (ieee ? 9 : 7);
    p.sem = {sm::sub(kExpA, kExpA, kPenc)};
    p.eval = [](rtl::SignalSet& s) {
      // Signed running exponent: may go <= 0 (underflow detected at round).
      s[kExpA] = static_cast<u64>(static_cast<fp::i64>(s[kExpA]) -
                                  static_cast<fp::i64>(s[kPenc]));
    };
    chain.push_back(std::move(p));
  }
  for (int l = 0; l < levels; ++l) {
    rtl::Piece p;
    p.name = "norm_l" + std::to_string(l);
    p.group = "norm_shift";
    p.delay_ns = tech.mux_level_delay(W, obj);
    if (l > 0) p.delay_chained_ns = tech.mux_level_chained_delay(W, obj);
    p.area = tech.mux_level_area(W, obj);
    p.live_bits = (E + 1) + W + (l + 1 < penc_w ? penc_w : 0) + (ieee ? 9 : 7);
    // A left shift is havoced at W bits rather than modeled: the encoder
    // guarantees the normalized msb lands at F+3, so no partial shift can
    // leave the W-bit window, but the shift amount itself is data.
    p.sem = {sm::read(kSum), sm::onif(sm::havoc(kSum, W), kPenc, l)};
    p.eval = [l](rtl::SignalSet& s) {
      if ((s[kPenc] >> l) & 1) s[kSum] <<= (1 << l);
    };
    chain.push_back(std::move(p));
  }

  // ---- IEEE mode only: gradual-underflow denormalizer -----------------------
  // The hardware cost the paper avoided: a tininess detector plus a second
  // variable right shifter to denormalize results below the normal range.
  if (ieee) {
    {
      rtl::Piece p;
      p.name = "tiny_detect";
      p.group = "denorm_result";
      p.delay_ns = tech.adder_delay(E + 1, obj);
      p.area = tech.adder_area(E + 1, obj) + tech.comparator_area(E, obj);
      p.live_bits = (E + 1) + W + levels + 10;
      p.sem = {sm::read(kExpA), sm::read(kCtl), sm::havoc(kAux, levels),
               sm::havoc(kCtl, 10)};
      p.eval = [W](rtl::SignalSet& s) {
        const fp::i64 exp = static_cast<fp::i64>(s[kExpA]);
        if (exp <= 0 && !ctl(s, kCtlZeroRes)) {
          set_ctl(s, kCtlTiny, true);
          const fp::i64 shift = 1 - exp;
          s[kAux] = static_cast<u64>(shift > W ? W : shift);
        } else {
          s[kAux] = 0;
        }
      };
      chain.push_back(std::move(p));
    }
    for (int l = 0; l < levels; ++l) {
      rtl::Piece p;
      p.name = "denorm_l" + std::to_string(l);
      p.group = "denorm_result";
      p.delay_ns = tech.mux_level_delay(W, obj);
      p.delay_chained_ns = tech.mux_level_chained_delay(W, obj);
      p.area = tech.mux_level_area(W, obj);
      p.live_bits = (E + 1) + W + (l + 1 < levels ? levels : 0) + 10;
      p.sem = {sm::onif(sm::shrjam(kSum, kSum, 1 << l), kAux, l)};
      p.eval = [l](rtl::SignalSet& s) {
        if ((s[kAux] >> l) & 1) {
          s[kSum] = fp::shift_right_jam64(s[kSum], 1 << l);
        }
      };
      chain.push_back(std::move(p));
    }
  }

  // ---- rounding: constant adders for mantissa and exponent -----------------
  // Constant (increment) adder over the kept mantissa, in carry chunks.
  const int rm_bits = F + 2;
  const int rm_chunks = (rm_bits + 13) / 14;
  for (int c = 0; c < rm_chunks; ++c) {
    const int bits = (rm_bits + rm_chunks - 1) / rm_chunks;
    rtl::Piece p;
    p.name = "round_mant_c" + std::to_string(c);
    p.group = "round";
    p.delay_ns = tech.adder_delay(bits, obj);
    if (c > 0) p.delay_chained_ns = tech.adder_chained_delay(bits, obj);
    p.area = tech.adder_area(bits, obj);
    p.live_bits = (E + 1) + (F + 2) + 3 + (ieee ? 9 : 7);
    const bool last = c == rm_chunks - 1;
    if (last) {
      p.sem = {sm::read(kSum), sm::band(kGrs, kSum, 7),
               sm::havoc(kKept, F + 2)};
    } else {
      p.sem = {sm::nop()};
    }
    p.eval = [rne, last](rtl::SignalSet& s) {
      if (!last) return;
      const u64 grs = s[kSum] & 7;
      u64 kept = s[kSum] >> 3;
      bool inc = false;
      if (rne) inc = grs > 4 || (grs == 4 && (kept & 1) != 0);
      s[kGrs] = grs;
      s[kKept] = kept + (inc ? 1 : 0);
    };
    chain.push_back(std::move(p));
  }
  {
    // Constant exponent adder plus the over/underflow detectors.
    rtl::Piece p;
    p.name = "round_exp";
    p.group = "round";
    p.delay_ns = tech.adder_delay(E, obj);
    p.area = tech.adder_area(E, obj) + tech.comparator_area(E, obj) * 2;
    p.live_bits = (E + 1) + (F + 2) + 3 + (ieee ? 9 : 7);
    p.sem = {sm::nop()};
    p.eval = [](rtl::SignalSet&) {
      // Timing/area placeholder: the carry out of the rounding increment and
      // the range detectors are consumed by the pack piece below.
    };
    chain.push_back(std::move(p));
  }
  {
    // Final result mux: specials override, compose sign/exponent/fraction.
    rtl::Piece p;
    p.name = "pack";
    p.group = "round";
    p.delay_ns = tech.lut_logic_delay(obj);
    p.area = tech.lut_logic_area(N, obj);
    p.live_bits = N + 5;  // result + flags
    p.sem = {sm::read(kCtl), sm::read(kExpA), sm::read(kKept), sm::read(kGrs),
             sm::havoc(kLaneResult, N), sm::flags()};
    p.eval = [fmt, F, E, rne, N, ieee](rtl::SignalSet& s) {
      const int emax = (1 << E) - 1;
      const bool inf_a = ctl(s, kCtlInfA);
      const bool inf_b = ctl(s, kCtlInfB);
      const bool sign_a = ctl(s, kCtlSignA);
      const bool sign_b = ctl(s, kCtlSignB);
      const u64 sign_mask = u64{1} << (N - 1);
      std::uint8_t flags = 0;
      u64 result;
      if (ieee && (ctl(s, kCtlNan) ||
                   (inf_a && inf_b && sign_a != sign_b))) {
        if (ctl(s, kCtlSnan) || !ctl(s, kCtlNan)) flags |= fp::kFlagInvalid;
        result = fmt.exp_mask() | fmt.quiet_bit();  // canonical qNaN
      } else if (ieee && ctl(s, kCtlTiny) && !inf_a && !inf_b &&
                 !ctl(s, kCtlZeroRes)) {
        // Gradual underflow: kept already denormalized; the pack addition
        // turns a round-up to 2^F into the minimum normal encoding.
        const bool sign = ctl(s, kCtlSignRes);
        if (s[kGrs] != 0) {
          flags |= fp::kFlagInexact | fp::kFlagUnderflow;
        }
        result = s[kKept] | (sign ? sign_mask : 0);
      } else if (inf_a && inf_b) {
        if (sign_a != sign_b) {
          flags |= fp::kFlagInvalid;
          result = fmt.exp_mask();  // +inf (no NaN support)
        } else {
          result = fmt.exp_mask() | (sign_a ? sign_mask : 0);
        }
      } else if (inf_a) {
        result = fmt.exp_mask() | (sign_a ? sign_mask : 0);
      } else if (inf_b) {
        result = fmt.exp_mask() | (sign_b ? sign_mask : 0);
      } else if (ctl(s, kCtlZeroRes)) {
        // Exact cancellation gives +0; a zero datapath result otherwise
        // keeps the larger operand's sign (covers -0 + -0 = -0).
        result = (!ctl(s, kCtlEffSub) && ctl(s, kCtlSignRes)) ? sign_mask : 0;
      } else {
        const bool sign = ctl(s, kCtlSignRes);
        fp::i64 exp = static_cast<fp::i64>(s[kExpA]);
        u64 kept = s[kKept];
        if (exp <= 0) {
          // Flush-to-zero underflow (tininess before rounding). IEEE mode
          // never reaches here: the tiny branch above consumed it.
          flags |= fp::kFlagUnderflow | fp::kFlagInexact;
          result = sign ? sign_mask : 0;
        } else {
          if ((kept >> (F + 1)) & 1) {  // rounding carried out
            kept >>= 1;
            exp += 1;
          }
          if (s[kGrs] != 0) flags |= fp::kFlagInexact;
          if (exp >= emax) {
            flags |= fp::kFlagOverflow | fp::kFlagInexact;
            result = rne ? fmt.exp_mask()
                         : ((static_cast<u64>(emax - 1) << F) |
                            fp::mask64(F));
            if (sign) result |= sign_mask;
          } else {
            result = (static_cast<u64>(exp) << F) | (kept & fp::mask64(F));
            if (sign) result |= sign_mask;
          }
        }
      }
      s[kLaneResult] = result;
      s.flags = flags;
    };
    chain.push_back(std::move(p));
  }

  assert(!chain.empty());
  return chain;
}

}  // namespace flopsim::units::detail
