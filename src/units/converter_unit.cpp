#include "units/converter_unit.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "fp/bits.hpp"

namespace flopsim::units {
namespace {

using fp::u64;
namespace sm = rtl::sem;

constexpr int kLaneIn = 0;
constexpr int kLaneResult = 0;
constexpr int kExp = 3;   // running exponent (signed, dst-biased)
constexpr int kWork = 5;  // significand datapath
constexpr int kCtl = 7;
constexpr int kGrs = 12;
constexpr int kKept = 13;

constexpr u64 kCtlSign = 1u << 0;
constexpr u64 kCtlInf = 1u << 1;
constexpr u64 kCtlZero = 1u << 2;

rtl::PieceChain build_converter_chain(fp::FpFormat src, fp::FpFormat dst,
                                      const UnitConfig& cfg) {
  cfg.validate();
  const int Fs = src.frac_bits();
  const int Fd = dst.frac_bits();
  const int Es = src.exp_bits();
  const int Ed = dst.exp_bits();
  const int Nd = dst.total_bits();
  const device::TechModel& tech = cfg.tech;
  const device::Objective obj = cfg.objective;
  const bool rne = cfg.rounding == fp::RoundingMode::kNearestEven;
  const bool narrowing = Fd < Fs;
  // Width of the re-biased exponent e + delta over e in [0, 2^Es - 1],
  // under the effective-width convention (signed min-width for negatives).
  const auto sew = [](long long v) -> int {
    int w = 0;
    long long m = v >= 0 ? v : -v - 1;
    while (m) { ++w; m >>= 1; }
    return v >= 0 ? w : w + 1;
  };
  const int delta = dst.bias() - src.bias();
  const int exp_w = std::max(sew(delta), sew(((1 << Es) - 1) + delta));

  rtl::PieceChain chain;

  // ---- unpack + classify ----------------------------------------------------
  {
    rtl::Piece p;
    p.name = "unpack";
    p.group = "denorm";
    p.delay_ns = tech.comparator_delay(Es, obj) + tech.gate_delay(obj);
    p.area = tech.comparator_area(Es, obj) * 2 +
             tech.lut_logic_area(Fs + 1, obj);
    p.live_bits = Es + (Fs + 1) + 3;
    p.sem = {sm::read(kLaneIn), sm::havoc(kCtl, 3), sm::havoc(kWork, Fs + 1),
             sm::havoc(kExp, Es)};
    p.eval = [src, Fs, Es](rtl::SignalSet& s) {
      const u64 in = s[kLaneIn] & src.bits_mask();
      const int emax = (1 << Es) - 1;
      const int e = static_cast<int>((in >> Fs) & fp::mask64(Es));
      s[kCtl] = 0;
      if ((in >> (src.total_bits() - 1)) & 1) s[kCtl] |= kCtlSign;
      if (e == emax) s[kCtl] |= kCtlInf;  // NaN encodings read as infinity
      if (e == 0) s[kCtl] |= kCtlZero;    // flush-to-zero
      s[kWork] = e == 0 ? 0
                        : ((in & fp::mask64(Fs)) | (u64{1} << Fs));
      s[kExp] = static_cast<u64>(e);
    };
    chain.push_back(std::move(p));
  }

  // ---- exponent re-bias ------------------------------------------------------
  {
    rtl::Piece p;
    p.name = "rebias";
    p.group = "exponent";
    p.delay_ns = tech.adder_delay(std::max(Es, Ed) + 1, obj);
    p.area = tech.adder_area(std::max(Es, Ed) + 1, obj);
    p.live_bits = exp_w + (Fs + 1) + 3;
    p.sem = {sm::addi(kExp, kExp, delta)};
    p.eval = [delta](rtl::SignalSet& s) {
      s[kExp] = static_cast<u64>(static_cast<fp::i64>(s[kExp]) + delta);
    };
    chain.push_back(std::move(p));
  }

  // ---- significand align: fixed shift (+ sticky OR when narrowing) ---------
  {
    rtl::Piece p;
    p.name = narrowing ? "align_jam" : "align_pad";
    p.group = "align";
    p.delay_ns =
        narrowing ? tech.lut_logic_delay(obj) : tech.gate_delay(obj);
    p.area = narrowing ? tech.lut_logic_area(Fs - Fd, obj)
                       : device::Resources{};
    p.live_bits = exp_w + (Fd + 4) + 3;
    if (narrowing) {
      p.sem = {sm::shl(kWork, kWork, 3), sm::shrjam(kWork, kWork, Fs - Fd)};
    } else {
      p.sem = {sm::shl(kWork, kWork, 3 + (Fd - Fs))};
    }
    p.eval = [Fs, Fd](rtl::SignalSet& s) {
      // Working form: msb of a normal value at Fd + 3 (GRS appended).
      u64 w = s[kWork] << 3;
      const int shift = Fs - Fd;
      if (shift > 0) {
        w = fp::shift_right_jam64(w, shift);
      } else if (shift < 0) {
        w <<= -shift;
      }
      s[kWork] = w;
    };
    chain.push_back(std::move(p));
  }

  // ---- rounding (narrowing only needs the increment chain) -----------------
  if (narrowing) {
    const int rm_bits = Fd + 2;
    const int rm_chunks = (rm_bits + 13) / 14;
    for (int c = 0; c < rm_chunks; ++c) {
      const int bits = (rm_bits + rm_chunks - 1) / rm_chunks;
      rtl::Piece p;
      p.name = "round_mant_c" + std::to_string(c);
      p.group = "round";
      p.delay_ns = tech.adder_delay(bits, obj);
      if (c > 0) p.delay_chained_ns = tech.adder_chained_delay(bits, obj);
      p.area = tech.adder_area(bits, obj);
      const bool last = c == rm_chunks - 1;
      p.live_bits = exp_w + (last ? (Fd + 2) + 3 : Fd + 4) + 3;
      if (last) {
        p.sem = {sm::read(kWork), sm::band(kGrs, kWork, 7),
                 sm::havoc(kKept, Fd + 2)};
      } else {
        p.sem = {sm::nop()};
      }
      p.eval = [rne, last](rtl::SignalSet& s) {
        if (!last) return;
        const u64 grs = s[kWork] & 7;
        u64 kept = s[kWork] >> 3;
        bool inc = false;
        if (rne) inc = grs > 4 || (grs == 4 && (kept & 1) != 0);
        s[kGrs] = grs;
        s[kKept] = kept + (inc ? 1 : 0);
      };
      chain.push_back(std::move(p));
    }
  } else {
    rtl::Piece p;
    p.name = "round_exact";
    p.group = "round";
    p.delay_ns = tech.gate_delay(obj);
    p.live_bits = exp_w + (Fd + 1) + 3;
    p.sem = {sm::cst(kGrs, 0), sm::shr(kKept, kWork, 3)};
    p.eval = [](rtl::SignalSet& s) {
      s[kGrs] = 0;
      s[kKept] = s[kWork] >> 3;
    };
    chain.push_back(std::move(p));
  }

  // ---- pack with range checks -----------------------------------------------
  {
    rtl::Piece p;
    p.name = "pack";
    p.group = "round";
    p.delay_ns = tech.adder_delay(Ed, obj) + tech.lut_logic_delay(obj);
    p.area = tech.adder_area(Ed, obj) + tech.comparator_area(Ed, obj) * 2 +
             tech.lut_logic_area(Nd, obj);
    p.live_bits = Nd + 5;
    p.sem = {sm::read(kCtl), sm::read(kExp), sm::read(kKept), sm::read(kGrs),
             sm::havoc(kLaneResult, Nd), sm::flags()};
    p.eval = [dst, Fd, Ed, rne, Nd](rtl::SignalSet& s) {
      const int emax = (1 << Ed) - 1;
      const bool sign = (s[kCtl] & kCtlSign) != 0;
      const u64 sign_mask = u64{1} << (Nd - 1);
      std::uint8_t flags = 0;
      u64 result;
      if (s[kCtl] & kCtlInf) {
        result = dst.exp_mask() | (sign ? sign_mask : 0);
      } else if (s[kCtl] & kCtlZero) {
        result = sign ? sign_mask : 0;
      } else {
        fp::i64 exp = static_cast<fp::i64>(s[kExp]);
        u64 kept = s[kKept];
        if (exp <= 0) {
          flags |= fp::kFlagUnderflow | fp::kFlagInexact;
          result = sign ? sign_mask : 0;
        } else {
          if ((kept >> (Fd + 1)) & 1) {
            kept >>= 1;
            exp += 1;
          }
          if (s[kGrs] != 0) flags |= fp::kFlagInexact;
          if (exp >= emax) {
            flags |= fp::kFlagOverflow | fp::kFlagInexact;
            result = rne ? dst.exp_mask()
                         : ((static_cast<u64>(emax - 1) << Fd) |
                            fp::mask64(Fd));
            if (sign) result |= sign_mask;
          } else {
            result = (static_cast<u64>(exp) << Fd) | (kept & fp::mask64(Fd));
            if (sign) result |= sign_mask;
          }
        }
      }
      s[kLaneResult] = result;
      s.flags = flags;
    };
    chain.push_back(std::move(p));
  }

  assert(!chain.empty());
  return chain;
}

}  // namespace

FormatConverter::FormatConverter(fp::FpFormat src, fp::FpFormat dst,
                                 const UnitConfig& cfg)
    : src_(src),
      dst_(dst),
      cfg_(cfg),
      chain_(std::make_unique<rtl::PieceChain>(
          build_converter_chain(src, dst, cfg))),
      plan_(rtl::plan_pipeline(*chain_, cfg.stages)),
      sim_(chain_.get(), plan_) {}

std::string FormatConverter::name() const {
  return "fp_cvt<" + src_.name() + "->" + dst_.name() + ">/s" +
         std::to_string(stages());
}

rtl::Timing FormatConverter::timing() const {
  return rtl::evaluate_timing(*chain_, plan_, cfg_.tech);
}

rtl::AreaBreakdown FormatConverter::area() const {
  return rtl::evaluate_area(*chain_, plan_, cfg_.tech, cfg_.objective);
}

void FormatConverter::step(const std::optional<fp::u64>& in) {
  if (in.has_value()) {
    rtl::SignalSet s;
    s.valid = true;
    s[kLaneIn] = *in;
    sim_.step(s);
  } else {
    sim_.step(std::nullopt);
  }
}

std::optional<FormatConverter::Output> FormatConverter::output() const {
  const rtl::SignalSet& out = sim_.output();
  if (!out.valid) return std::nullopt;
  return Output{out[kLaneResult], out.flags};
}

void FormatConverter::reset() { sim_.reset(); }

FormatConverter::Output FormatConverter::evaluate(fp::u64 in) const {
  rtl::SignalSet s;
  s.valid = true;
  s[kLaneIn] = in;
  rtl::evaluate_chain(*chain_, s);
  return Output{s[kLaneResult], s.flags};
}

}  // namespace flopsim::units
