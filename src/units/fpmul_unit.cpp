// Structural floating-point multiplier, following the paper's block diagram
// (Figure 1b):
//
//   stage 1  denormalizer (same module as the adder's)
//   stage 2  fixed-point mantissa multiplier built from embedded MULT18X18
//            blocks + a 4:2 compressor tree + a carry-propagate adder over
//            the bits that matter (the low half only feeds the sticky OR) —
//            "typically, for the 54bit fixed-point multiplication, seven
//            pipelining stages are required to achieve 200MHz"; in parallel,
//            the exponent adder and bias subtractor (cuttable between)
//   stage 3  normalizer (small shifter + exponent subtract; "since we do not
//            consider denormal numbers, we shift the mantissa of the result
//            atmost by two bits") and the same rounding module as the adder
//
// Bit-exact with fp::mul under FpEnv::paper at every pipeline depth.
#include <cassert>

#include "fp/bits.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::units::detail {
namespace {

using fp::u64;
using fp::u128;
namespace sm = rtl::sem;

constexpr int kExpA = 3;
constexpr int kExpB = 4;
constexpr int kManA = 5;
constexpr int kManB = 6;
constexpr int kCtl = 7;
constexpr int kProdLo = 8;
constexpr int kProdHi = 9;
constexpr int kWork = 10;  // jammed working significand (<= F+4 bits)
constexpr int kExp = 11;   // running result exponent (signed)
constexpr int kGrs = 12;
constexpr int kKept = 13;

constexpr u64 kCtlSignA = 1u << 0;
constexpr u64 kCtlSignB = 1u << 1;
constexpr u64 kCtlInfA = 1u << 2;
constexpr u64 kCtlInfB = 1u << 3;
constexpr u64 kCtlZeroA = 1u << 4;
constexpr u64 kCtlZeroB = 1u << 5;
// IEEE-mode extension bits.
constexpr u64 kCtlNan = 1u << 6;
constexpr u64 kCtlSnan = 1u << 7;
constexpr u64 kCtlTiny = 1u << 8;

bool ctl(const rtl::SignalSet& s, u64 bit) { return (s[kCtl] & bit) != 0; }
void set_ctl(rtl::SignalSet& s, u64 bit, bool v) {
  if (v) {
    s[kCtl] |= bit;
  } else {
    s[kCtl] &= ~bit;
  }
}

}  // namespace

rtl::PieceChain build_multiplier_chain(fp::FpFormat fmt,
                                       const UnitConfig& cfg) {
  const int F = fmt.frac_bits();
  const int E = fmt.exp_bits();
  const int N = fmt.total_bits();
  const int sig_bits = F + 1;
  const int prod_bits = 2 * sig_bits;
  const device::TechModel& tech = cfg.tech;
  const device::Objective obj = cfg.objective;
  const bool rne = cfg.rounding == fp::RoundingMode::kNearestEven;
  const bool ieee = cfg.ieee_mode;

  // MULT18X18 usage: 17 unsigned bits per chunk.
  const int chunks = (sig_bits + 16) / 17;
  const int n_bmults = chunks * chunks;
  // 4:2 compressor tree levels to reduce chunks^2 partial products.
  int csa_levels = 0;
  for (int r = n_bmults; r > 1; r = (r + 3) / 4) ++csa_levels;
  // Carry-propagate chunks over the significant upper bits (the low F-2
  // bits feed only the sticky OR).
  const int cpa_bits = prod_bits - std::max(0, F - 2);
  const int n_cpa = std::max(1, (cpa_bits + 15) / 16);
  const int cpa_chunk = (cpa_bits + n_cpa - 1) / n_cpa;

  rtl::PieceChain chain;

  // ---- denormalizer (same module as the adder's) ---------------------------
  {
    rtl::Piece p;
    p.name = "denorm";
    p.group = "denorm";
    p.delay_ns = tech.comparator_delay(E, obj) + tech.gate_delay(obj);
    p.area =
        tech.comparator_area(E, obj) * 4 + tech.lut_logic_area(F + 1, obj) * 2;
    p.live_bits = 2 * (E + sig_bits) + (ieee ? 8 : 6);
    p.sem = {sm::read(kLaneInA),          sm::read(kLaneInB),
             sm::havoc(kManA, sig_bits),  sm::havoc(kManB, sig_bits),
             sm::havoc(kExpA, E),         sm::havoc(kExpB, E),
             sm::havoc(kCtl, ieee ? 8 : 6)};
    p.eval = [fmt, F, E, N, ieee](rtl::SignalSet& s) {
      const u64 a = s[kLaneInA] & fmt.bits_mask();
      const u64 b = s[kLaneInB] & fmt.bits_mask();
      const u64 frac_mask = fp::mask64(F);
      const int emax = (1 << E) - 1;
      const int ea = static_cast<int>((a >> F) & fp::mask64(E));
      const int eb = static_cast<int>((b >> F) & fp::mask64(E));
      s[kExpA] = static_cast<u64>(ea);
      s[kExpB] = static_cast<u64>(eb);
      s[kCtl] = 0;
      if (ieee) {
        s[kManA] = ea == 0 ? (a & frac_mask)
                           : ((a & frac_mask) | (u64{1} << F));
        s[kManB] = eb == 0 ? (b & frac_mask)
                           : ((b & frac_mask) | (u64{1} << F));
        s[kExpA] = static_cast<u64>(ea == 0 ? 1 : ea);
        s[kExpB] = static_cast<u64>(eb == 0 ? 1 : eb);
        const bool nan_a = ea == emax && (a & frac_mask) != 0;
        const bool nan_b = eb == emax && (b & frac_mask) != 0;
        set_ctl(s, kCtlNan, nan_a || nan_b);
        set_ctl(s, kCtlSnan,
                (nan_a && ((a >> (F - 1)) & 1) == 0) ||
                    (nan_b && ((b >> (F - 1)) & 1) == 0));
        set_ctl(s, kCtlInfA, ea == emax && (a & frac_mask) == 0);
        set_ctl(s, kCtlInfB, eb == emax && (b & frac_mask) == 0);
        set_ctl(s, kCtlZeroA, s[kManA] == 0 && ea == 0);
        set_ctl(s, kCtlZeroB, s[kManB] == 0 && eb == 0);
      } else {
        s[kManA] = ea == 0 ? 0 : ((a & frac_mask) | (u64{1} << F));
        s[kManB] = eb == 0 ? 0 : ((b & frac_mask) | (u64{1} << F));
        set_ctl(s, kCtlInfA, ea == emax);
        set_ctl(s, kCtlInfB, eb == emax);
        set_ctl(s, kCtlZeroA, ea == 0);
        set_ctl(s, kCtlZeroB, eb == 0);
      }
      set_ctl(s, kCtlSignA, (a >> (N - 1)) & 1);
      set_ctl(s, kCtlSignB, (b >> (N - 1)) & 1);
    };
    chain.push_back(std::move(p));
  }

  // ---- IEEE mode only: subnormal-operand normalizers -----------------------
  // Each operand needs a priority encoder + left shifter to renormalize a
  // subnormal significand before the multiplier array — a major share of
  // the "lot of hardware" the paper declined to spend.
  if (ieee) {
    const int lvls = fp::msb_index64(static_cast<u64>(F + 1)) + 1;
    // Both operands normalize in parallel in hardware; model one encoder
    // piece (covering both, side by side) then cuttable shifter levels.
    {
      rtl::Piece p;
      p.name = "norm_op_penc";
      p.group = "op_norm";
      p.delay_ns = tech.priority_encoder_delay(F + 1, obj);
      p.area = tech.priority_encoder_area(F + 1, obj) * 2 +
               tech.adder_area(E + 1, obj) * 2;
      p.live_bits = 2 * (E + sig_bits) + 16 + 8;
      p.sem = {sm::read(kManA), sm::read(kManB), sm::havoc(kProdLo, 16)};
      p.eval = [F](rtl::SignalSet& s) {
        // Shift amounts, packed: low 8 bits for A, next 8 for B.
        u64 packed = 0;
        if (s[kManA] != 0) {
          const int msb = fp::msb_index64(s[kManA]);
          if (msb < F) packed |= static_cast<u64>(F - msb);
        }
        if (s[kManB] != 0) {
          const int msb = fp::msb_index64(s[kManB]);
          if (msb < F) packed |= static_cast<u64>(F - msb) << 8;
        }
        s[kProdLo] = packed;  // lane free until the BMULT stage
      };
      chain.push_back(std::move(p));
    }
    for (int l = 0; l < lvls; ++l) {
      rtl::Piece p;
      p.name = "norm_op_l" + std::to_string(l);
      p.group = "op_norm";
      p.delay_ns = tech.mux_level_delay(F + 1, obj);
      p.delay_chained_ns = tech.mux_level_chained_delay(F + 1, obj);
      p.area = tech.mux_level_area(F + 1, obj) * 2;
      // The packed shift-amount register stays 16 bits wide until the last
      // level retires it; the exponents widen to signed E+2 at that point.
      p.live_bits = 2 * (E + sig_bits) + (l + 1 < lvls ? 16 : 4) + 8;
      const bool last = l == lvls - 1;
      p.sem = {sm::read(kProdLo), sm::read(kManA), sm::read(kManB),
               sm::havoc(kManA, sig_bits), sm::havoc(kManB, sig_bits)};
      if (last) {
        p.sem.push_back(sm::read(kExpA));
        p.sem.push_back(sm::read(kExpB));
        p.sem.push_back(sm::havocs(kExpA, E + 2));
        p.sem.push_back(sm::havocs(kExpB, E + 2));
      }
      p.eval = [l, last](rtl::SignalSet& s) {
        const u64 sa = s[kProdLo] & 0xff;
        const u64 sb = (s[kProdLo] >> 8) & 0xff;
        if ((sa >> l) & 1) s[kManA] <<= (1 << l);
        if ((sb >> l) & 1) s[kManB] <<= (1 << l);
        if (last) {
          // Exponent adjusters ride with the final level.
          s[kExpA] = static_cast<u64>(static_cast<fp::i64>(s[kExpA]) -
                                      static_cast<fp::i64>(sa));
          s[kExpB] = static_cast<u64>(static_cast<fp::i64>(s[kExpB]) -
                                      static_cast<fp::i64>(sb));
        }
      };
      chain.push_back(std::move(p));
    }
  }

  // ---- mantissa partial products: MULT18X18 array or LUT fabric ------------
  if (cfg.use_embedded_multipliers) {
    rtl::Piece p;
    p.name = "bmult";
    p.group = "mantissa_mul";
    p.delay_ns = std::max(tech.bmult_delay(obj), tech.adder_delay(E, obj));
    p.area = tech.adder_area(E, obj);
    p.area.bmults = n_bmults;
    // Pre-bias the exponent sum of two E-bit operands needs E+1 bits
    // (signed E+2 in IEEE mode, where op-normalization can go negative).
    p.live_bits = prod_bits + (ieee ? E + 2 : E + 1) + (ieee ? 8 : 6);
    p.sem = {sm::read(kManA), sm::read(kManB),
             sm::havoc(kProdLo, std::min(prod_bits, 64)),
             sm::havoc(kProdHi, std::max(0, prod_bits - 64)),
             sm::add(kExp, kExpA, kExpB)};
    p.eval = [chunks](rtl::SignalSet& s) {
      // The 17-bit chunk products of the MULT18X18 array, combined exactly.
      u128 prod = 0;
      for (int i = 0; i < chunks; ++i) {
        const u64 ca = (s[kManA] >> (17 * i)) & fp::mask64(17);
        if (ca == 0) continue;
        for (int j = 0; j < chunks; ++j) {
          const u64 cb = (s[kManB] >> (17 * j)) & fp::mask64(17);
          prod += static_cast<u128>(ca * cb) << (17 * (i + j));
        }
      }
      s[kProdLo] = static_cast<u64>(prod);
      s[kProdHi] = static_cast<u64>(prod >> 64);
      s[kExp] = s[kExpA] + s[kExpB];  // exponent adder, in parallel
    };
    chain.push_back(std::move(p));
  } else {
    // LUT-fabric multiplier: radix-4 partial-product rows compressed in
    // carry-save form, a few rows per piece. Burns ~sig^2/4 slices but no
    // BMULTs, and exposes more pipeline cut points.
    const int rows = (sig_bits + 1) / 2;
    const int rows_per_piece = 3;
    const int n_pieces = (rows + rows_per_piece - 1) / rows_per_piece;
    for (int g = 0; g < n_pieces; ++g) {
      rtl::Piece p;
      p.name = "ppgen_" + std::to_string(g);
      p.group = "mantissa_mul";
      const int gr = std::min(rows_per_piece, rows - g * rows_per_piece);
      p.delay_ns = tech.csa_level_delay(prod_bits, obj) +
                   (gr - 1) * tech.csa_level_chained_delay(prod_bits, obj);
      if (g > 0) {
        p.delay_chained_ns = gr * tech.csa_level_chained_delay(prod_bits, obj);
      }
      p.area = tech.csa_level_area(prod_bits, obj) * gr;
      const bool first = g == 0;
      const int row_lo = g * rows_per_piece;
      // A cut mid-accumulation latches BOTH mantissa operands (the rows
      // still to come read them) next to the carry-save accumulator, of
      // which only sig + 2*rows_done + 1 bits are nonzero yet; the final
      // row set retires the operands and leaves the full product.
      const int acc_hi =
          std::min(prod_bits, sig_bits + 2 * (row_lo + gr) + 1);
      p.live_bits = (g == n_pieces - 1 ? prod_bits : 2 * sig_bits + acc_hi) +
                    (ieee ? E + 2 : E + 1) + (ieee ? 8 : 6);
      p.sem = {sm::read(kManA), sm::read(kManB)};
      if (!first) {
        p.sem.push_back(sm::read(kProdLo));
        p.sem.push_back(sm::read(kProdHi));
      }
      p.sem.push_back(sm::havoc(kProdLo, std::min(acc_hi, 64)));
      p.sem.push_back(sm::havoc(kProdHi, std::max(0, acc_hi - 64)));
      if (first) p.sem.push_back(sm::add(kExp, kExpA, kExpB));
      p.eval = [first, row_lo, gr](rtl::SignalSet& s) {
        if (first) {
          s[kProdLo] = 0;
          s[kProdHi] = 0;
          s[kExp] = s[kExpA] + s[kExpB];  // exponent adder rides along
        }
        u128 acc = (static_cast<u128>(s[kProdHi]) << 64) | s[kProdLo];
        for (int r = row_lo; r < row_lo + gr; ++r) {
          // Radix-4 row: two multiplicand bits at a time.
          const u64 bits2 = (s[kManB] >> (2 * r)) & 3;
          if (bits2 != 0) {
            acc += static_cast<u128>(s[kManA]) * bits2 << (2 * r);
          }
        }
        s[kProdLo] = static_cast<u64>(acc);
        s[kProdHi] = static_cast<u64>(acc >> 64);
      };
      chain.push_back(std::move(p));
    }
  }

  // ---- 4:2 compressor tree; first level also subtracts the bias ------------
  for (int l = 0; l < csa_levels; ++l) {
    rtl::Piece p;
    p.name = "csa_l" + std::to_string(l);
    p.group = "mantissa_mul";
    p.delay_ns = std::max(tech.csa_level_delay(prod_bits, obj),
                          l == 0 ? tech.adder_delay(E, obj) : 0.0);
    p.delay_chained_ns = tech.csa_level_chained_delay(prod_bits, obj);
    p.area = tech.csa_level_area(prod_bits, obj) +
             (l == 0 ? tech.adder_area(E, obj) : device::Resources{});
    p.live_bits = prod_bits + (E + 1) + (ieee ? 8 : 6);
    const bool first = l == 0;
    const int bias = fmt.bias();
    if (first) {
      p.sem = {sm::subi(kExp, kExp, bias - 1)};
    } else {
      p.sem = {sm::nop()};
    }
    p.eval = [first, bias](rtl::SignalSet& s) {
      if (first) {
        // Bias subtractor (+1 re-centers the jam normalization below).
        s[kExp] = static_cast<u64>(static_cast<fp::i64>(s[kExp]) - bias + 1);
      }
      // Partial products progress through carry-save form; the running
      // value is already exact in kProdLo/kProdHi.
    };
    chain.push_back(std::move(p));
  }
  if (csa_levels == 0) {
    // Single-BMULT formats: the bias subtract rides with the CPA below, so
    // fold it into the first CPA chunk via a flag captured there.
  }

  // ---- carry-propagate chunks; the last one forms the jammed significand ---
  for (int c = 0; c < n_cpa; ++c) {
    rtl::Piece p;
    p.name = "cpa_c" + std::to_string(c);
    p.group = "cpa";
    p.delay_ns = tech.adder_delay(cpa_chunk, obj);
    if (c > 0) p.delay_chained_ns = tech.adder_chained_delay(cpa_chunk, obj);
    p.area = tech.adder_area(cpa_chunk, obj);
    const bool last = c == n_cpa - 1;
    const bool do_bias = csa_levels == 0 && c == 0;
    const int bias = fmt.bias();
    if (last) p.area += tech.lut_logic_area(std::max(1, F - 2), obj);
    p.live_bits = last ? ((F + 4) + (E + 1) + (ieee ? 8 : 6))
                       : (prod_bits + (E + 1) + (ieee ? 8 : 6));
    if (do_bias) p.sem.push_back(sm::subi(kExp, kExp, bias - 1));
    if (last) {
      p.sem.push_back(sm::read(kProdLo));
      p.sem.push_back(sm::read(kProdHi));
      p.sem.push_back(sm::havoc(kWork, F + 4));
    }
    if (p.sem.empty()) p.sem = {sm::nop()};
    p.eval = [last, do_bias, bias, F](rtl::SignalSet& s) {
      if (do_bias) {
        s[kExp] = static_cast<u64>(static_cast<fp::i64>(s[kExp]) - bias + 1);
      }
      if (!last) return;
      const u128 prod =
          (static_cast<u128>(s[kProdHi]) << 64) | s[kProdLo];
      const int shift = F - 2;
      u64 work;
      if (shift >= 0) {
        work = static_cast<u64>(fp::shift_right_jam128(prod, shift));
      } else {
        work = static_cast<u64>(prod) << (-shift);
      }
      s[kWork] = work;
    };
    chain.push_back(std::move(p));
  }

  // ---- normalizer: at most a 1-bit adjust + exponent subtract --------------
  {
    rtl::Piece p;
    p.name = "norm2";
    p.group = "normalize";
    p.delay_ns =
        std::max(tech.mux_level_delay(F + 4, obj), tech.adder_delay(E, obj));
    p.area = tech.mux_level_area(F + 4, obj) + tech.adder_area(E, obj);
    p.live_bits = (F + 4) + (E + 1) + (ieee ? 8 : 6);
    // The decrement tests the pre-shift MSB, so it must be modeled before
    // the shift rewrites that bit (same ordering rule as the adder's
    // prenorm). A zero significand keeps its guard bit unknown upstream,
    // so the joined branches still contain the untouched exponent.
    p.sem = {sm::onif(sm::subi(kExp, kExp, 1), kWork, F + 3, true),
             sm::onif(sm::shl(kWork, kWork, 1), kWork, F + 3, true)};
    p.eval = [F](rtl::SignalSet& s) {
      // Product of [1,2)x[1,2) is in [1,4): after the jam the MSB sits at
      // F+2 or F+3; align it to F+3.
      if (s[kWork] != 0 && ((s[kWork] >> (F + 3)) & 1) == 0) {
        s[kWork] <<= 1;
        s[kExp] = static_cast<u64>(static_cast<fp::i64>(s[kExp]) - 1);
      }
    };
    chain.push_back(std::move(p));
  }

  // ---- IEEE mode only: gradual-underflow denormalizer -----------------------
  if (ieee) {
    const int wlvls = fp::msb_index64(static_cast<u64>(F + 4)) + 1;
    {
      rtl::Piece p;
      p.name = "tiny_detect";
      p.group = "denorm_result";
      p.delay_ns = tech.adder_delay(E + 1, obj);
      p.area = tech.adder_area(E + 1, obj) + tech.comparator_area(E, obj);
      p.live_bits = (F + 4) + (E + 1) + wlvls + 9;
      p.sem = {sm::read(kExp), sm::read(kWork), sm::read(kCtl),
               sm::havoc(kProdLo, wlvls), sm::havoc(kCtl, 9)};
      const int wmax = F + 4;
      p.eval = [wmax](rtl::SignalSet& s) {
        const fp::i64 exp = static_cast<fp::i64>(s[kExp]);
        if (exp <= 0 && s[kWork] != 0) {
          set_ctl(s, kCtlTiny, true);
          const fp::i64 shift = 1 - exp;
          s[kProdLo] = static_cast<u64>(shift > wmax ? wmax : shift);
        } else {
          s[kProdLo] = 0;  // lane reuse: shift amount
        }
      };
      chain.push_back(std::move(p));
    }
    for (int l = 0; l < wlvls; ++l) {
      rtl::Piece p;
      p.name = "denorm_l" + std::to_string(l);
      p.group = "denorm_result";
      p.delay_ns = tech.mux_level_delay(F + 4, obj);
      p.delay_chained_ns = tech.mux_level_chained_delay(F + 4, obj);
      p.area = tech.mux_level_area(F + 4, obj);
      // Like the adder's aligner, the shift-distance register keeps its
      // full width until every level has consumed its bit.
      p.live_bits = (F + 4) + (E + 1) + (l + 1 < wlvls ? wlvls : 0) + 9;
      p.sem = {sm::onif(sm::shrjam(kWork, kWork, 1 << l), kProdLo, l)};
      p.eval = [l](rtl::SignalSet& s) {
        if ((s[kProdLo] >> l) & 1) {
          s[kWork] = fp::shift_right_jam64(s[kWork], 1 << l);
        }
      };
      chain.push_back(std::move(p));
    }
  }

  // ---- rounding (same module as the adder's) --------------------------------
  const int rm_bits = F + 2;
  const int rm_chunks = (rm_bits + 13) / 14;
  for (int c = 0; c < rm_chunks; ++c) {
    const int bits = (rm_bits + rm_chunks - 1) / rm_chunks;
    rtl::Piece p;
    p.name = "round_mant_c" + std::to_string(c);
    p.group = "round";
    p.delay_ns = tech.adder_delay(bits, obj);
    if (c > 0) p.delay_chained_ns = tech.adder_chained_delay(bits, obj);
    p.area = tech.adder_area(bits, obj);
    const bool last = c == rm_chunks - 1;
    // The unrounded significand stays live until the last chunk splits it
    // into kept bits and GRS.
    p.live_bits = last ? (E + 1) + (F + 2) + 3 + (ieee ? 9 : 6)
                       : (E + 1) + (F + 4) + (ieee ? 9 : 6);
    if (last) {
      p.sem = {sm::read(kWork), sm::band(kGrs, kWork, 7),
               sm::havoc(kKept, F + 2)};
    } else {
      p.sem = {sm::nop()};
    }
    p.eval = [rne, last](rtl::SignalSet& s) {
      if (!last) return;
      const u64 grs = s[kWork] & 7;
      u64 kept = s[kWork] >> 3;
      bool inc = false;
      if (rne) inc = grs > 4 || (grs == 4 && (kept & 1) != 0);
      s[kGrs] = grs;
      s[kKept] = kept + (inc ? 1 : 0);
    };
    chain.push_back(std::move(p));
  }
  {
    rtl::Piece p;
    p.name = "round_exp";
    p.group = "round";
    p.delay_ns = tech.adder_delay(E, obj);
    p.area = tech.adder_area(E, obj) + tech.comparator_area(E, obj) * 2;
    p.live_bits = (E + 1) + (F + 2) + 3 + (ieee ? 9 : 6);
    p.sem = {sm::nop()};
    p.eval = [](rtl::SignalSet&) {
      // Timing/area placeholder; consumed by pack below.
    };
    chain.push_back(std::move(p));
  }
  {
    rtl::Piece p;
    p.name = "pack";
    p.group = "round";
    p.delay_ns = tech.lut_logic_delay(obj);
    p.area = tech.lut_logic_area(N, obj);
    p.live_bits = N + 5;
    p.sem = {sm::read(kCtl), sm::read(kExp), sm::read(kKept), sm::read(kGrs),
             sm::havoc(kLaneResult, N), sm::flags()};
    p.eval = [fmt, F, E, rne, N, ieee](rtl::SignalSet& s) {
      const int emax = (1 << E) - 1;
      const bool inf_a = ctl(s, kCtlInfA);
      const bool inf_b = ctl(s, kCtlInfB);
      const bool zero_a = ctl(s, kCtlZeroA);
      const bool zero_b = ctl(s, kCtlZeroB);
      const bool sign = ctl(s, kCtlSignA) != ctl(s, kCtlSignB);
      const u64 sign_mask = u64{1} << (N - 1);
      std::uint8_t flags = 0;
      u64 result;
      if (ieee && (ctl(s, kCtlNan) ||
                   ((inf_a || inf_b) && (zero_a || zero_b)))) {
        if (ctl(s, kCtlSnan) || !ctl(s, kCtlNan)) flags |= fp::kFlagInvalid;
        result = fmt.exp_mask() | fmt.quiet_bit();
      } else if (ieee && ctl(s, kCtlTiny) && !inf_a && !inf_b && !zero_a &&
                 !zero_b) {
        if (s[kGrs] != 0) {
          flags |= fp::kFlagInexact | fp::kFlagUnderflow;
        }
        result = s[kKept] | (sign ? sign_mask : 0);
      } else if (inf_a || inf_b) {
        if (zero_a || zero_b) {
          flags |= fp::kFlagInvalid;
          result = fmt.exp_mask();  // +inf, no NaN support
        } else {
          result = fmt.exp_mask() | (sign ? sign_mask : 0);
        }
      } else if (zero_a || zero_b) {
        result = sign ? sign_mask : 0;
      } else {
        fp::i64 exp = static_cast<fp::i64>(s[kExp]);
        u64 kept = s[kKept];
        if (exp <= 0) {
          flags |= fp::kFlagUnderflow | fp::kFlagInexact;
          result = sign ? sign_mask : 0;
        } else {
          if ((kept >> (F + 1)) & 1) {
            kept >>= 1;
            exp += 1;
          }
          if (s[kGrs] != 0) flags |= fp::kFlagInexact;
          if (exp >= emax) {
            flags |= fp::kFlagOverflow | fp::kFlagInexact;
            result = rne ? fmt.exp_mask()
                         : ((static_cast<u64>(emax - 1) << F) |
                            fp::mask64(F));
            if (sign) result |= sign_mask;
          } else {
            result = (static_cast<u64>(exp) << F) | (kept & fp::mask64(F));
            if (sign) result |= sign_mask;
          }
        }
      }
      s[kLaneResult] = result;
      s.flags = flags;
    };
    chain.push_back(std::move(p));
  }

  assert(!chain.empty());
  return chain;
}

}  // namespace flopsim::units::detail
