#include "units/unit_config.hpp"

#include <stdexcept>

namespace flopsim::units {

void UnitConfig::validate() const {
  if (rounding != fp::RoundingMode::kNearestEven &&
      rounding != fp::RoundingMode::kTowardZero) {
    throw std::invalid_argument(
        "UnitConfig: the cores implement only rounding-to-nearest and "
        "truncation (per the paper)");
  }
  if (stages < 1) {
    throw std::invalid_argument("UnitConfig: stages must be >= 1");
  }
}

}  // namespace flopsim::units
