// Structural floating-point square root (library extension — completes the
// Quixilica-style core family alongside the divider).
//
// Datapath: denormalize, make the exponent even (folding one bit into the
// significand), then a classic restoring square-root digit recurrence —
// one root bit per step, two steps per piece, like the divider's rows —
// and the shared rounding tail. The root of a normalized significand lands
// with its MSB exactly at F+3, so no normalization shifter is needed, and
// a valid input can neither overflow nor underflow.
//
// Bit-exact with fp::sqrt under FpEnv::paper at every pipeline depth.
#include <cassert>

#include "fp/bits.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::units::detail {
namespace {

using fp::u64;
using fp::u128;
namespace sm = rtl::sem;

constexpr int kXLo = 3;   // radicand, low/high lanes (consumed msb-first)
constexpr int kXHi = 4;
constexpr int kRem = 5;   // partial remainder
constexpr int kRoot = 6;  // root bits, msb-first
constexpr int kCtl = 7;
constexpr int kExp = 11;  // result exponent (biased)
constexpr int kGrs = 12;
constexpr int kKept = 13;

constexpr u64 kCtlSign = 1u << 0;
constexpr u64 kCtlInf = 1u << 1;
constexpr u64 kCtlZero = 1u << 2;
constexpr u64 kCtlNan = 1u << 3;
constexpr u64 kCtlSnan = 1u << 4;

/// One restoring square-root step: consume the radicand's top 2 bits.
void sqrt_step(rtl::SignalSet& s) {
  // Shift the top two bits of X into the remainder.
  u128 x = (static_cast<u128>(s[kXHi]) << 64) | s[kXLo];
  const int top = 127 - 1;
  const u64 two = static_cast<u64>(x >> top);
  x <<= 2;
  s[kXHi] = static_cast<u64>(x >> 64);
  s[kXLo] = static_cast<u64>(x);
  u64 rem = (s[kRem] << 2) | two;
  const u64 trial = (s[kRoot] << 2) | 1;
  if (rem >= trial) {
    rem -= trial;
    s[kRoot] = (s[kRoot] << 1) | 1;
  } else {
    s[kRoot] <<= 1;
  }
  s[kRem] = rem;
}

}  // namespace

rtl::PieceChain build_sqrt_chain(fp::FpFormat fmt, const UnitConfig& cfg) {
  const int F = fmt.frac_bits();
  const int E = fmt.exp_bits();
  const int N = fmt.total_bits();
  const device::TechModel& tech = cfg.tech;
  const device::Objective obj = cfg.objective;
  const bool rne = cfg.rounding == fp::RoundingMode::kNearestEven;
  const bool ieee = cfg.ieee_mode;

  rtl::PieceChain chain;

  // ---- denormalize + exponent-parity prep ----------------------------------
  {
    rtl::Piece p;
    p.name = "denorm_prep";
    p.group = "denorm";
    p.delay_ns = tech.comparator_delay(E, obj) + tech.gate_delay(obj) +
                 tech.adder_delay(E, obj) +
                 (ieee ? tech.priority_encoder_delay(F + 1, obj) : 0.0);
    p.area = tech.comparator_area(E, obj) * 2 + tech.adder_area(E, obj) +
             tech.lut_logic_area(F + 2, obj) +
             (ieee ? tech.priority_encoder_area(F + 1, obj) +
                         tech.mux_level_area(F + 1, obj) * 6
                   : device::Resources{});
    // The radicand rides the top of the 128-bit window, so its bits never
    // reach the low lane (128 - F - 2 >= 64 for every format): kXLo is
    // provably constant zero and the remainder/root start at zero.
    p.live_bits = 64 + E + (ieee ? 5 : 3);
    p.sem = {sm::read(kLaneInA),  sm::havoc(kXHi, 64),
             sm::havoc(kXLo, 0),  sm::havoc(kRem, 0),
             sm::havoc(kRoot, 0), sm::havoc(kExp, E),
             sm::havoc(kCtl, ieee ? 5 : 3)};
    const int bias = fmt.bias();
    p.eval = [fmt, F, E, N, bias, ieee](rtl::SignalSet& s) {
      const u64 a = s[kLaneInA] & fmt.bits_mask();
      const int emax = (1 << E) - 1;
      const int e = static_cast<int>((a >> F) & fp::mask64(E));
      const u64 frac = a & fp::mask64(F);
      s[kCtl] = 0;
      if ((a >> (N - 1)) & 1) s[kCtl] |= kCtlSign;
      u64 sig;
      int ue;
      if (ieee) {
        const bool nan = e == emax && frac != 0;
        if (nan) s[kCtl] |= kCtlNan;
        if (nan && ((a >> (F - 1)) & 1) == 0) s[kCtl] |= kCtlSnan;
        if (e == emax && frac == 0) s[kCtl] |= kCtlInf;
        if (e == 0 && frac == 0) s[kCtl] |= kCtlZero;
        // Gradual underflow: normalize a subnormal significand (the
        // operand-normalizer hardware is charged to this piece in IEEE
        // mode via the area below).
        sig = e == 0 ? frac : (frac | (u64{1} << F));
        ue = (e == 0 ? 1 : e) - bias;
        if (sig != 0 && e == 0) {
          const int msb = fp::msb_index64(sig);
          sig <<= (F - msb);
          ue -= (F - msb);
        }
      } else {
        if (e == emax) s[kCtl] |= kCtlInf;
        if (e == 0) s[kCtl] |= kCtlZero;
        sig = e == 0 ? 0 : (frac | (u64{1} << F));
        ue = e - bias;
      }
      u128 s2 = sig;
      if (ue & 1) {
        s2 <<= 1;
        ue -= 1;
      }
      // Radicand X = s2 << (F+6), pre-shifted so its 2(F+4) working bits
      // start at the top of the 128-bit window.
      const int xbits = 2 * (F + 4);
      u128 x = s2 << (F + 6);
      x <<= (128 - xbits);
      s[kXHi] = static_cast<u64>(x >> 64);
      s[kXLo] = static_cast<u64>(x);
      s[kRem] = 0;
      s[kRoot] = 0;
      s[kExp] = static_cast<u64>(ue / 2 + bias);
    };
    chain.push_back(std::move(p));
  }

  // ---- restoring root rows: two root bits per piece -------------------------
  const int root_bits = F + 4;
  const int n_rows = (root_bits + 1) / 2;
  for (int r = 0; r < n_rows; ++r) {
    rtl::Piece p;
    p.name = "sqrt_r" + std::to_string(r);
    p.group = "sqrt";
    p.delay_ns = (0.45 + 1.2 * 0.5 + 0.017 * (F + 4)) *
                 (obj == device::Objective::kSpeed ? 0.88 : 1.0);
    if (r > 0) p.delay_chained_ns = p.delay_ns * 0.8;
    p.area = tech.adder_area(F + 4, obj);
    const int bits_this_row = std::min(2, root_bits - 2 * r);
    const bool last = r == n_rows - 1;
    // Root grows two bits per row; the remainder obeys rem <= 2*root
    // (exactness of the restoring recurrence), so F+6 bits bound it. The
    // radicand window and remainder retire after the last row.
    const int root_w = std::min(root_bits, 2 * (r + 1));
    p.live_bits =
        (last ? 0 : 64 + (F + 6)) + root_w + E + (ieee ? 5 : 3);
    p.sem = {sm::read(kXHi), sm::read(kRem), sm::read(kRoot),
             sm::havoc(kXHi, 64), sm::havoc(kRem, F + 6),
             sm::havoc(kRoot, root_w)};
    p.eval = [bits_this_row, last](rtl::SignalSet& s) {
      for (int i = 0; i < bits_this_row; ++i) sqrt_step(s);
      if (last && s[kRem] != 0) s[kRoot] |= 1;  // remainder -> sticky
    };
    chain.push_back(std::move(p));
  }

  // ---- rounding (root MSB sits exactly at F+3: no normalizer) ---------------
  const int rm_bits = F + 2;
  const int rm_chunks = (rm_bits + 13) / 14;
  for (int c = 0; c < rm_chunks; ++c) {
    const int bits = (rm_bits + rm_chunks - 1) / rm_chunks;
    rtl::Piece p;
    p.name = "round_mant_c" + std::to_string(c);
    p.group = "round";
    p.delay_ns = tech.adder_delay(bits, obj);
    if (c > 0) p.delay_chained_ns = tech.adder_chained_delay(bits, obj);
    p.area = tech.adder_area(bits, obj);
    const bool last = c == rm_chunks - 1;
    p.live_bits = E + (last ? (F + 2) + 3 : F + 4) + (ieee ? 5 : 3);
    if (last) {
      p.sem = {sm::read(kRoot), sm::band(kGrs, kRoot, 7),
               sm::havoc(kKept, F + 2)};
    } else {
      p.sem = {sm::nop()};
    }
    p.eval = [rne, last](rtl::SignalSet& s) {
      if (!last) return;
      const u64 grs = s[kRoot] & 7;
      u64 kept = s[kRoot] >> 3;
      bool inc = false;
      if (rne) inc = grs > 4 || (grs == 4 && (kept & 1) != 0);
      s[kGrs] = grs;
      s[kKept] = kept + (inc ? 1 : 0);
    };
    chain.push_back(std::move(p));
  }
  {
    rtl::Piece p;
    p.name = "pack";
    p.group = "round";
    p.delay_ns = tech.adder_delay(E, obj) + tech.lut_logic_delay(obj);
    p.area = tech.adder_area(E, obj) + tech.lut_logic_area(N, obj);
    p.live_bits = N + 5;
    p.sem = {sm::read(kCtl), sm::read(kExp), sm::read(kKept), sm::read(kGrs),
             sm::havoc(kLaneResult, N), sm::flags()};
    p.eval = [fmt, F, N, ieee](rtl::SignalSet& s) {
      const bool sign = (s[kCtl] & kCtlSign) != 0;
      const u64 sign_mask = u64{1} << (N - 1);
      std::uint8_t flags = 0;
      u64 result;
      if (ieee && (s[kCtl] & kCtlNan)) {
        if (s[kCtl] & kCtlSnan) flags |= fp::kFlagInvalid;
        result = fmt.exp_mask() | fmt.quiet_bit();
      } else if (s[kCtl] & kCtlZero) {
        result = sign ? sign_mask : 0;  // sqrt(+-0) = +-0
      } else if (sign) {
        flags |= fp::kFlagInvalid;
        // Negative: qNaN with NaN support, +inf without.
        result = ieee ? (fmt.exp_mask() | fmt.quiet_bit()) : fmt.exp_mask();
      } else if (s[kCtl] & kCtlInf) {
        result = fmt.exp_mask();
      } else {
        fp::i64 exp = static_cast<fp::i64>(s[kExp]);
        u64 kept = s[kKept];
        if ((kept >> (F + 1)) & 1) {
          kept >>= 1;
          exp += 1;
        }
        if (s[kGrs] != 0) flags |= fp::kFlagInexact;
        result = (static_cast<u64>(exp) << F) | (kept & fp::mask64(F));
      }
      s[kLaneResult] = result;
      s.flags = flags;
    };
    chain.push_back(std::move(p));
  }

  assert(!chain.empty());
  return chain;
}

}  // namespace flopsim::units::detail
