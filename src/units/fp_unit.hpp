// FpUnit: a generated, pipelined floating-point core — the software twin of
// the paper's VHDL adder/subtractor and multiplier.
//
// A unit owns a chain of combinational pieces (the paper's subunits at
// register-insertion granularity), a pipeline plan for the requested depth,
// and a cycle-accurate simulator. Pipeline depth changes latency, frequency,
// area and power — never values: at any depth the unit produces bit-exactly
// the result of fp::add / fp::mul under FpEnv::paper(rounding).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "fp/format.hpp"
#include "rtl/pipeline.hpp"
#include "rtl/simulator.hpp"
#include "units/unit_config.hpp"

namespace flopsim::units {

enum class UnitKind { kAdder, kMultiplier, kDivider, kSqrt, kMac };

const char* to_string(UnitKind k);

struct UnitInput {
  fp::u64 a = 0;  ///< operand encoding in the unit's format
  fp::u64 b = 0;     ///< ignored by the (unary) square-root core
  bool subtract = false;  ///< adder only: compute a - b
  fp::u64 c = 0;  ///< fused MAC only: the addend of a * b + c
};

struct UnitOutput {
  fp::u64 result = 0;
  std::uint8_t flags = 0;  ///< fp::Flags raised by this operation
};

class FpUnit {
 public:
  FpUnit(UnitKind kind, fp::FpFormat fmt, const UnitConfig& cfg);

  FpUnit(const FpUnit&) = delete;
  FpUnit& operator=(const FpUnit&) = delete;
  FpUnit(FpUnit&&) = default;
  FpUnit& operator=(FpUnit&&) = default;

  UnitKind kind() const { return kind_; }
  fp::FpFormat format() const { return fmt_; }
  const UnitConfig& config() const { return cfg_; }
  std::string name() const;

  /// A fresh (reset) unit with this unit's exact configuration. The
  /// const-correct way to replicate a configured core — campaign workers
  /// clone the probe instead of sharing one mutable pipeline.
  FpUnit clone() const { return FpUnit(kind_, fmt_, cfg_); }

  /// Pipeline depth actually realized (requested depth clamped).
  int stages() const { return plan_.stages(); }
  /// Latency in cycles (== stages: one register level per stage).
  int latency() const { return plan_.stages(); }
  /// Deepest pipeline this chain supports.
  int max_stages() const { return rtl::max_stages(*chain_); }

  rtl::Timing timing() const;
  rtl::AreaBreakdown area() const;
  double freq_mhz() const { return timing().freq_mhz; }
  /// The paper's core metric: throughput per unit area (MHz/slice).
  double freq_per_area() const;

  // --- cycle-accurate interface --------------------------------------------
  /// The operand bundle `in` as it enters the pipeline: lanes packed per
  /// the detail:: lane conventions, valid set. This is exactly what
  /// step() presents to the simulator — campaign evaluators pack their
  /// workloads through here so compiled stimuli match the machine.
  static rtl::SignalSet pack(const UnitInput& in);
  /// Present an operand pair (or a bubble) and advance one clock.
  void step(const std::optional<UnitInput>& in);
  /// The unit's registered output; nullopt unless DONE is asserted.
  std::optional<UnitOutput> output() const;
  void reset();

  /// Combinational reference: run the piece chain with no registers.
  UnitOutput evaluate(const UnitInput& in) const;

  const rtl::PieceChain& pieces() const { return *chain_; }
  const rtl::PipelinePlan& plan() const { return plan_; }
  /// Current pipeline registers (for activity measurement).
  const std::vector<rtl::SignalSet>& latches() const {
    return sim_.latches();
  }
  /// The cycle-accurate simulator itself — read-only access for the
  /// obs/ occupancy probes and rtl::TraceRecorder waveform capture.
  const rtl::PipelineSim& sim() const { return sim_; }
  /// Post-latch observer hook (fault injection). Nullptr detaches; the
  /// zero-observer path is bit-identical to an unobserved unit.
  void set_latch_observer(rtl::LatchObserver* observer) {
    sim_.set_latch_observer(observer);
  }

 private:
  UnitKind kind_;
  fp::FpFormat fmt_;
  UnitConfig cfg_;
  std::unique_ptr<rtl::PieceChain> chain_;  // stable address for the sim
  rtl::PipelinePlan plan_;
  rtl::PipelineSim sim_;
};

namespace detail {
// Chain builders (fpadd_unit.cpp / fpmul_unit.cpp).
rtl::PieceChain build_adder_chain(fp::FpFormat fmt, const UnitConfig& cfg);
rtl::PieceChain build_multiplier_chain(fp::FpFormat fmt,
                                       const UnitConfig& cfg);
rtl::PieceChain build_divider_chain(fp::FpFormat fmt, const UnitConfig& cfg);
rtl::PieceChain build_sqrt_chain(fp::FpFormat fmt, const UnitConfig& cfg);
rtl::PieceChain build_mac_chain(fp::FpFormat fmt, const UnitConfig& cfg);
// Shared lane conventions: operands enter in lanes 0/1 (+ lane 2 bit 0 =
// subtract), the result leaves in lane 0 with flags in SignalSet::flags.
inline constexpr int kLaneInA = 0;
inline constexpr int kLaneInB = 1;
inline constexpr int kLaneInCtl = 2;
inline constexpr int kLaneInC = 19;
inline constexpr int kLaneResult = 0;
}  // namespace detail

}  // namespace flopsim::units
