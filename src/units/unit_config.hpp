// Configuration of a generated floating-point core.
#pragma once

#include "device/tech.hpp"
#include "fp/env.hpp"

namespace flopsim::units {

struct UnitConfig {
  /// Requested pipeline depth (clamped to [1, max_stages] of the chain).
  int stages = 1;
  /// The paper's cores offer round-to-nearest and truncation only;
  /// other modes are rejected.
  fp::RoundingMode rounding = fp::RoundingMode::kNearestEven;
  device::Objective objective = device::Objective::kArea;
  device::TechModel tech = device::TechModel::virtex2pro7();
  /// Full IEEE-754 mode (extension): gradual underflow and NaN handling in
  /// hardware — the support the paper declined ("denormal and NaN numbers
  /// are generally considered rare and may not justify the usage of a lot
  /// of hardware"). Supported by the adder and multiplier generators; costs
  /// extra normalize/denormalize shifters. See bench/ext_denormal_cost.
  bool ieee_mode = false;
  /// Multiplier only: use the embedded MULT18X18 blocks (default, as the
  /// paper does) or build the mantissa multiplier from LUT fabric — the
  /// knob behind the paper's remark that tool speed optimization "might
  /// result in more embedded multipliers being used up". Fabric multipliers
  /// burn slices instead of BMULTs and pipeline deeper.
  bool use_embedded_multipliers = true;

  /// Throws std::invalid_argument for configurations the paper's hardware
  /// cannot express.
  void validate() const;

  /// The softfloat environment this hardware configuration realizes.
  fp::FpEnv env() const {
    return ieee_mode ? fp::FpEnv::ieee(rounding) : fp::FpEnv::paper(rounding);
  }
};

}  // namespace flopsim::units
