// Structural floating-point divider (library extension — the commercial
// cores the paper compares against, e.g. Quixilica, ship one; the paper's
// own analysis covers adder and multiplier only).
//
// Datapath: the shared denormalizer, then a classic restoring division
// array — one initial magnitude step plus rows producing two quotient bits
// each (borrow-save rows, so a row is LUT-limited rather than full
// carry-propagate) — then the same normalize/round tail as the multiplier.
// The exponent subtractor and bias adder ride in parallel with the first
// rows. Dividers pipeline very deep: a 64-bit instance exposes ~35 stages.
//
// Bit-exact with fp::div under FpEnv::paper at every pipeline depth.
#include <cassert>

#include "fp/bits.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::units::detail {
namespace {

using fp::u64;
namespace sm = rtl::sem;

constexpr int kExpA = 3;
constexpr int kExpB = 4;
constexpr int kManA = 5;   // numerator significand; later: partial remainder
constexpr int kManB = 6;   // divisor significand
constexpr int kCtl = 7;
constexpr int kQuot = 8;   // quotient bits, msb-first accumulation
constexpr int kWork = 10;  // normalized working significand
constexpr int kExp = 11;   // running result exponent (signed)
constexpr int kGrs = 12;
constexpr int kKept = 13;

constexpr u64 kCtlSignA = 1u << 0;
constexpr u64 kCtlSignB = 1u << 1;
constexpr u64 kCtlInfA = 1u << 2;
constexpr u64 kCtlInfB = 1u << 3;
constexpr u64 kCtlZeroA = 1u << 4;
constexpr u64 kCtlZeroB = 1u << 5;
constexpr u64 kCtlNan = 1u << 6;
constexpr u64 kCtlSnan = 1u << 7;
constexpr u64 kCtlTiny = 1u << 8;

bool ctl(const rtl::SignalSet& s, u64 bit) { return (s[kCtl] & bit) != 0; }
void set_ctl(rtl::SignalSet& s, u64 bit, bool v) {
  if (v) {
    s[kCtl] |= bit;
  } else {
    s[kCtl] &= ~bit;
  }
}

/// One restoring-division step: shift the remainder, subtract the divisor
/// if it fits, emit a quotient bit.
void div_step(rtl::SignalSet& s) {
  s[kManA] <<= 1;
  s[kQuot] <<= 1;
  if (s[kManA] >= s[kManB]) {
    s[kManA] -= s[kManB];
    s[kQuot] |= 1;
  }
}

}  // namespace

rtl::PieceChain build_divider_chain(fp::FpFormat fmt, const UnitConfig& cfg) {
  const int F = fmt.frac_bits();
  const int E = fmt.exp_bits();
  const int N = fmt.total_bits();
  const device::TechModel& tech = cfg.tech;
  const device::Objective obj = cfg.objective;
  const bool rne = cfg.rounding == fp::RoundingMode::kNearestEven;
  const bool ieee = cfg.ieee_mode;

  rtl::PieceChain chain;

  // ---- denormalizer (shared subunit) ---------------------------------------
  {
    rtl::Piece p;
    p.name = "denorm";
    p.group = "denorm";
    p.delay_ns = tech.comparator_delay(E, obj) + tech.gate_delay(obj);
    p.area =
        tech.comparator_area(E, obj) * 4 + tech.lut_logic_area(F + 1, obj) * 2;
    p.live_bits = 2 * (E + (F + 1)) + (ieee ? 8 : 6);
    p.sem = {sm::read(kLaneInA),        sm::read(kLaneInB),
             sm::havoc(kManA, F + 1),   sm::havoc(kManB, F + 1),
             sm::havoc(kExpA, E),       sm::havoc(kExpB, E),
             sm::havoc(kCtl, ieee ? 8 : 6)};
    p.eval = [fmt, F, E, N, ieee](rtl::SignalSet& s) {
      const u64 a = s[kLaneInA] & fmt.bits_mask();
      const u64 b = s[kLaneInB] & fmt.bits_mask();
      const u64 frac_mask = fp::mask64(F);
      const int emax = (1 << E) - 1;
      const int ea = static_cast<int>((a >> F) & fp::mask64(E));
      const int eb = static_cast<int>((b >> F) & fp::mask64(E));
      s[kExpA] = static_cast<u64>(ea);
      s[kExpB] = static_cast<u64>(eb);
      s[kCtl] = 0;
      if (ieee) {
        s[kManA] = ea == 0 ? (a & frac_mask)
                           : ((a & frac_mask) | (u64{1} << F));
        s[kManB] = eb == 0 ? (b & frac_mask)
                           : ((b & frac_mask) | (u64{1} << F));
        s[kExpA] = static_cast<u64>(ea == 0 ? 1 : ea);
        s[kExpB] = static_cast<u64>(eb == 0 ? 1 : eb);
        const bool nan_a = ea == emax && (a & frac_mask) != 0;
        const bool nan_b = eb == emax && (b & frac_mask) != 0;
        set_ctl(s, kCtlNan, nan_a || nan_b);
        set_ctl(s, kCtlSnan,
                (nan_a && ((a >> (F - 1)) & 1) == 0) ||
                    (nan_b && ((b >> (F - 1)) & 1) == 0));
        set_ctl(s, kCtlInfA, ea == emax && (a & frac_mask) == 0);
        set_ctl(s, kCtlInfB, eb == emax && (b & frac_mask) == 0);
        set_ctl(s, kCtlZeroA, ea == 0 && (a & frac_mask) == 0);
        set_ctl(s, kCtlZeroB, eb == 0 && (b & frac_mask) == 0);
      } else {
        s[kManA] = ea == 0 ? 0 : ((a & frac_mask) | (u64{1} << F));
        s[kManB] = eb == 0 ? 0 : ((b & frac_mask) | (u64{1} << F));
        set_ctl(s, kCtlInfA, ea == emax);
        set_ctl(s, kCtlInfB, eb == emax);
        set_ctl(s, kCtlZeroA, ea == 0);
        set_ctl(s, kCtlZeroB, eb == 0);
      }
      set_ctl(s, kCtlSignA, (a >> (N - 1)) & 1);
      set_ctl(s, kCtlSignB, (b >> (N - 1)) & 1);
    };
    chain.push_back(std::move(p));
  }

  // ---- IEEE mode only: subnormal-operand normalizers ------------------------
  if (ieee) {
    const int lvls = fp::msb_index64(static_cast<u64>(F + 1)) + 1;
    for (int op = 0; op < 2; ++op) {
      rtl::Piece p;
      p.name = op == 0 ? "norm_op_a" : "norm_op_b";
      p.group = "op_norm";
      p.delay_ns = tech.priority_encoder_delay(F + 1, obj) +
                   lvls * tech.mux_level_chained_delay(F + 1, obj);
      p.area = tech.priority_encoder_area(F + 1, obj) +
               tech.mux_level_area(F + 1, obj) * lvls +
               tech.adder_area(E + 1, obj);
      p.live_bits = 2 * (F + 1) + (E + 2) + (op == 0 ? E : E + 2) + 8;
      const int lane_m = op == 0 ? kManA : kManB;
      const int lane_e = op == 0 ? kExpA : kExpB;
      p.sem = {sm::read(lane_m), sm::read(lane_e),
               sm::havoc(lane_m, F + 1), sm::havocs(lane_e, E + 2)};
      p.eval = [lane_m, lane_e, F](rtl::SignalSet& s) {
        if (s[lane_m] == 0) return;
        const int msb = fp::msb_index64(s[lane_m]);
        if (msb < F) {
          s[lane_m] <<= (F - msb);
          s[lane_e] = static_cast<u64>(static_cast<fp::i64>(s[lane_e]) -
                                       (F - msb));
        }
      };
      chain.push_back(std::move(p));
    }
  }

  // ---- initial magnitude step + exponent arithmetic ------------------------
  {
    rtl::Piece p;
    p.name = "div_init";
    p.group = "divide";
    p.delay_ns =
        std::max(tech.comparator_delay(F + 1, obj), tech.adder_delay(E, obj));
    p.area = tech.comparator_area(F + 1, obj) + tech.adder_area(F + 1, obj) +
             tech.adder_area(E, obj) * 2;
    p.live_bits = 2 * (F + 1) + 1 + (ieee ? E + 2 : E + 1) + (ieee ? 8 : 6);
    p.sem = {sm::read(kManA), sm::read(kManB), sm::havoc(kManA, F + 1),
             sm::havoc(kQuot, 1), sm::sub(kExp, kExpA, kExpB),
             sm::addi(kExp, kExp, fmt.bias() - 1)};
    const int bias = fmt.bias();
    p.eval = [bias](rtl::SignalSet& s) {
      // First quotient bit: numerator may equal or exceed the divisor.
      s[kQuot] = 0;
      if (s[kManB] == 0) {
        // Dead datapath (div-by-zero / inf): flush so the remainder
        // invariant manA < manB <= 2^(F+1) holds through every row.
        s[kManA] = 0;
      } else if (s[kManA] >= s[kManB]) {
        s[kManA] -= s[kManB];
        s[kQuot] = 1;
      }
      // Exponent subtract and bias add, in parallel with the array.
      s[kExp] = static_cast<u64>(static_cast<fp::i64>(s[kExpA]) -
                                 static_cast<fp::i64>(s[kExpB]) + bias - 1);
    };
    chain.push_back(std::move(p));
  }

  // ---- restoring rows: two quotient bits per piece --------------------------
  // F+4 more bits complete the F+5-bit raw quotient.
  const int rest_bits = F + 4;
  const int n_rows = (rest_bits + 1) / 2;
  for (int r = 0; r < n_rows; ++r) {
    rtl::Piece p;
    p.name = "div_r" + std::to_string(r);
    p.group = "divide";
    // Borrow-save row pair: LUT + short route, width-dependent.
    p.delay_ns = (0.45 + 1.2 * 0.5 + 0.015 * (F + 2)) *
                 (obj == device::Objective::kSpeed ? 0.88 : 1.0);
    p.delay_chained_ns = p.delay_ns * 0.8;
    p.area = tech.adder_area(F + 2, obj);
    const int bits_this_row = std::min(2, rest_bits - 2 * r);
    const bool last = r == n_rows - 1;
    // The quotient register only holds 1 + 2*(rows done) bits so far; the
    // remainder and divisor retire after the last row.
    const int quot_w = std::min(F + 5, 1 + 2 * (r + 1));
    p.live_bits = (last ? 0 : 2 * (F + 1)) + quot_w +
                  (ieee ? E + 2 : E + 1) + (ieee ? 8 : 6);
    p.sem = {sm::read(kManA), sm::read(kManB), sm::read(kQuot),
             sm::havoc(kManA, F + 1), sm::havoc(kQuot, quot_w)};
    p.eval = [bits_this_row, last](rtl::SignalSet& s) {
      for (int i = 0; i < bits_this_row; ++i) div_step(s);
      if (last && s[kManA] != 0) s[kQuot] |= 1;  // remainder -> sticky
    };
    chain.push_back(std::move(p));
  }

  // ---- normalize: quotient msb is at F+3 or F+4 ----------------------------
  {
    rtl::Piece p;
    p.name = "norm2";
    p.group = "normalize";
    p.delay_ns =
        std::max(tech.mux_level_delay(F + 4, obj), tech.adder_delay(E, obj));
    p.area = tech.mux_level_area(F + 4, obj) + tech.adder_area(E, obj);
    p.live_bits = (F + 4) + (ieee ? E + 2 : E + 1) + (ieee ? 8 : 6);
    p.sem = {sm::onif(sm::addi(kExp, kExp, 1), kQuot, F + 4),
             sm::read(kQuot), sm::havoc(kWork, F + 4)};
    p.eval = [F](rtl::SignalSet& s) {
      u64 q = s[kQuot];
      if ((q >> (F + 4)) & 1) {
        q = fp::shift_right_jam64(q, 1);
        s[kExp] = static_cast<u64>(static_cast<fp::i64>(s[kExp]) + 1);
      }
      s[kWork] = q;
    };
    chain.push_back(std::move(p));
  }

  // ---- IEEE mode only: gradual-underflow denormalizer -----------------------
  if (ieee) {
    const int wlvls = fp::msb_index64(static_cast<u64>(F + 4)) + 1;
    {
      rtl::Piece p;
      p.name = "tiny_detect";
      p.group = "denorm_result";
      p.delay_ns = tech.adder_delay(E + 1, obj);
      p.area = tech.adder_area(E + 1, obj) + tech.comparator_area(E, obj);
      p.live_bits = (F + 4) + (E + 2) + wlvls + 9;
      p.sem = {sm::read(kExp), sm::read(kWork), sm::read(kCtl),
               sm::havoc(kQuot, wlvls), sm::havoc(kCtl, 9)};
      const int wmax = F + 4;
      p.eval = [wmax](rtl::SignalSet& s) {
        const fp::i64 exp = static_cast<fp::i64>(s[kExp]);
        if (exp <= 0 && s[kWork] != 0) {
          set_ctl(s, kCtlTiny, true);
          const fp::i64 shift = 1 - exp;
          s[kQuot] = static_cast<u64>(shift > wmax ? wmax : shift);
        } else {
          s[kQuot] = 0;  // lane reuse: shift amount
        }
      };
      chain.push_back(std::move(p));
    }
    for (int l = 0; l < wlvls; ++l) {
      rtl::Piece p;
      p.name = "denorm_l" + std::to_string(l);
      p.group = "denorm_result";
      p.delay_ns = tech.mux_level_delay(F + 4, obj);
      p.delay_chained_ns = tech.mux_level_chained_delay(F + 4, obj);
      p.area = tech.mux_level_area(F + 4, obj);
      p.live_bits = (F + 4) + (E + 2) + (l + 1 < wlvls ? wlvls : 0) + 9;
      p.sem = {sm::onif(sm::shrjam(kWork, kWork, 1 << l), kQuot, l)};
      p.eval = [l](rtl::SignalSet& s) {
        if ((s[kQuot] >> l) & 1) {
          s[kWork] = fp::shift_right_jam64(s[kWork], 1 << l);
        }
      };
      chain.push_back(std::move(p));
    }
  }

  // ---- rounding (same module as adder/multiplier) ---------------------------
  const int rm_bits = F + 2;
  const int rm_chunks = (rm_bits + 13) / 14;
  for (int c = 0; c < rm_chunks; ++c) {
    const int bits = (rm_bits + rm_chunks - 1) / rm_chunks;
    rtl::Piece p;
    p.name = "round_mant_c" + std::to_string(c);
    p.group = "round";
    p.delay_ns = tech.adder_delay(bits, obj);
    if (c > 0) p.delay_chained_ns = tech.adder_chained_delay(bits, obj);
    p.area = tech.adder_area(bits, obj);
    const bool last = c == rm_chunks - 1;
    p.live_bits = (ieee ? E + 2 : E + 1) +
                  (last ? (F + 2) + 3 : F + 4) + (ieee ? 9 : 6);
    if (last) {
      p.sem = {sm::read(kWork), sm::band(kGrs, kWork, 7),
               sm::havoc(kKept, F + 2)};
    } else {
      p.sem = {sm::nop()};
    }
    p.eval = [rne, last](rtl::SignalSet& s) {
      if (!last) return;
      const u64 grs = s[kWork] & 7;
      u64 kept = s[kWork] >> 3;
      bool inc = false;
      if (rne) inc = grs > 4 || (grs == 4 && (kept & 1) != 0);
      s[kGrs] = grs;
      s[kKept] = kept + (inc ? 1 : 0);
    };
    chain.push_back(std::move(p));
  }
  {
    rtl::Piece p;
    p.name = "round_exp";
    p.group = "round";
    p.delay_ns = tech.adder_delay(E, obj);
    p.area = tech.adder_area(E, obj) + tech.comparator_area(E, obj) * 2;
    p.live_bits = (ieee ? E + 2 : E + 1) + (F + 2) + 3 + (ieee ? 9 : 6);
    p.sem = {sm::nop()};
    p.eval = [](rtl::SignalSet&) {};
    chain.push_back(std::move(p));
  }
  {
    rtl::Piece p;
    p.name = "pack";
    p.group = "round";
    p.delay_ns = tech.lut_logic_delay(obj);
    p.area = tech.lut_logic_area(N, obj);
    p.live_bits = N + 5;
    p.sem = {sm::read(kCtl), sm::read(kExp), sm::read(kKept), sm::read(kGrs),
             sm::havoc(kLaneResult, N), sm::flags()};
    p.eval = [fmt, F, E, rne, N, ieee](rtl::SignalSet& s) {
      const int emax = (1 << E) - 1;
      const bool inf_a = ctl(s, kCtlInfA);
      const bool inf_b = ctl(s, kCtlInfB);
      const bool zero_a = ctl(s, kCtlZeroA);
      const bool zero_b = ctl(s, kCtlZeroB);
      const bool sign = ctl(s, kCtlSignA) != ctl(s, kCtlSignB);
      const u64 sign_mask = u64{1} << (N - 1);
      std::uint8_t flags = 0;
      u64 result;
      if (ieee && (ctl(s, kCtlNan) || (inf_a && inf_b) ||
                   (zero_a && zero_b))) {
        if (ctl(s, kCtlSnan) || !ctl(s, kCtlNan)) flags |= fp::kFlagInvalid;
        result = fmt.exp_mask() | fmt.quiet_bit();
      } else if (ieee && ctl(s, kCtlTiny) && !inf_a && !inf_b && !zero_a &&
                 !zero_b) {
        if (s[kGrs] != 0) {
          flags |= fp::kFlagInexact | fp::kFlagUnderflow;
        }
        result = s[kKept] | (sign ? sign_mask : 0);
      } else if (inf_a) {
        if (inf_b) {
          flags |= fp::kFlagInvalid;
          result = fmt.exp_mask();  // +inf (no NaN support)
        } else {
          result = fmt.exp_mask() | (sign ? sign_mask : 0);
        }
      } else if (inf_b) {
        result = sign ? sign_mask : 0;  // finite / inf = 0
      } else if (zero_b) {
        if (zero_a) {
          flags |= fp::kFlagInvalid;
          result = fmt.exp_mask();
        } else {
          flags |= fp::kFlagDivByZero;
          result = fmt.exp_mask() | (sign ? sign_mask : 0);
        }
      } else if (zero_a) {
        result = sign ? sign_mask : 0;
      } else {
        fp::i64 exp = static_cast<fp::i64>(s[kExp]);
        u64 kept = s[kKept];
        if (exp <= 0) {
          flags |= fp::kFlagUnderflow | fp::kFlagInexact;
          result = sign ? sign_mask : 0;
        } else {
          if ((kept >> (F + 1)) & 1) {
            kept >>= 1;
            exp += 1;
          }
          if (s[kGrs] != 0) flags |= fp::kFlagInexact;
          if (exp >= emax) {
            flags |= fp::kFlagOverflow | fp::kFlagInexact;
            result = rne ? fmt.exp_mask()
                         : ((static_cast<u64>(emax - 1) << F) |
                            fp::mask64(F));
            if (sign) result |= sign_mask;
          } else {
            result = (static_cast<u64>(exp) << F) | (kept & fp::mask64(F));
            if (sign) result |= sign_mask;
          }
        }
      }
      s[kLaneResult] = result;
      s.flags = flags;
    };
    chain.push_back(std::move(p));
  }

  assert(!chain.empty());
  return chain;
}

}  // namespace flopsim::units::detail
