#include "device/resources.hpp"

#include <cstdio>

namespace flopsim::device {

std::string Resources::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "{slices=%d luts=%d ffs=%d bmults=%d brams=%d}", slices, luts,
                ffs, bmults, brams);
  return buf;
}

}  // namespace flopsim::device
