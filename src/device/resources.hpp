// FPGA resource vectors: the unit of area accounting throughout the library.
//
// Mirrors what the paper reports per design: slices, LUTs, flip-flops,
// embedded 18x18 multipliers (BMULTs) and block RAMs.
#pragma once

#include <string>

namespace flopsim::device {

struct Resources {
  int slices = 0;
  int luts = 0;
  int ffs = 0;
  int bmults = 0;
  int brams = 0;

  Resources& operator+=(const Resources& o) {
    slices += o.slices;
    luts += o.luts;
    ffs += o.ffs;
    bmults += o.bmults;
    brams += o.brams;
    return *this;
  }
  friend Resources operator+(Resources a, const Resources& b) { return a += b; }
  friend Resources operator*(Resources a, int k) {
    a.slices *= k;
    a.luts *= k;
    a.ffs *= k;
    a.bmults *= k;
    a.brams *= k;
    return a;
  }
  friend bool operator==(const Resources&, const Resources&) = default;

  /// True iff every field of this fits within @p budget.
  bool fits_in(const Resources& budget) const {
    return slices <= budget.slices && luts <= budget.luts &&
           ffs <= budget.ffs && bmults <= budget.bmults &&
           brams <= budget.brams;
  }

  std::string to_string() const;
};

}  // namespace flopsim::device
