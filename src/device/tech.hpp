// Technology model: per-primitive combinational delay and area for a
// Virtex-II-Pro-class fabric.
//
// This is the substitute for the paper's ISE 5.2i synthesis + place-and-route
// timing (see DESIGN.md): each primitive the paper's subunits are built from
// (carry-chain comparator/adder, barrel-shifter mux levels, priority encoder,
// embedded 18x18 multiplier, pipeline registers) gets an analytic delay and
// an area vector. Constants are calibrated against the datapoints the paper
// states in prose:
//   * <=11-bit comparators achieve 250 MHz; the 54-bit mantissa comparator
//     achieves 220 MHz;
//   * comparators and adders take about n/2 slices; shifters n*log2(n)/2;
//   * three serial mux levels exceed 200 MHz, higher rates need two;
//   * a 54-bit fixed-point adder needs ~4 pipeline stages for 200 MHz;
//   * a 54-bit priority encoder must be split in two (+ small adder) to
//     exceed 200 MHz;
//   * a 54-bit fixed-point multiplier needs ~7 pipeline stages for 200 MHz.
#pragma once

#include "device/resources.hpp"

namespace flopsim::device {

/// The synthesis/place-and-route optimization objective. The paper: "using a
/// different optimization objective (speed or area) for the synthesis and
/// place and route tool gives vastly different results" — SPEED replicates
/// logic (faster, larger), AREA packs tightly.
enum class Objective { kArea, kSpeed };

const char* to_string(Objective o);

class TechModel {
 public:
  /// Virtex-II Pro, -7 speed grade (the paper's XC2VP125-7).
  static TechModel virtex2pro7();
  /// Virtex-II Pro, -5 speed grade: ~20% slower, for sensitivity studies.
  static TechModel virtex2pro5();

  // --- register timing -----------------------------------------------------
  /// Clock-to-out + setup + average clock skew: the per-stage overhead added
  /// to the combinational delay of the critical stage.
  double register_overhead_ns() const { return reg_overhead_ns_; }

  // --- primitive delays (ns), already including local net delay ------------
  double comparator_delay(int bits, Objective o) const;
  /// One chunk of a carry-chain adder/subtractor.
  double adder_delay(int bits, Objective o) const;
  /// Same chunk when the carry chain continues from the previous chunk in
  /// the same stage (no fresh LUT/net base).
  double adder_chained_delay(int bits, Objective o) const;
  /// One 2:1 mux level of a barrel shifter (datapath `bits` wide).
  double mux_level_delay(int bits, Objective o) const;
  /// A mux level directly cascading a previous level in the same stage.
  double mux_level_chained_delay(int bits, Objective o) const;
  double priority_encoder_delay(int bits, Objective o) const;
  /// Embedded MULT18X18 block, including input/output nets.
  double bmult_delay(Objective o) const;
  /// One carry-save compression level of the multiplier's adder tree.
  double csa_level_delay(int bits, Objective o) const;
  double csa_level_chained_delay(int bits, Objective o) const;
  /// Simple LUT logic (XOR of signs, exception detect, small muxes).
  double lut_logic_delay(Objective o) const;
  /// A single cascaded LUT with no fresh net (e.g. the hidden-bit AND fed
  /// by the denormalizer's comparator).
  double gate_delay(Objective o) const;

  // --- primitive areas ------------------------------------------------------
  Resources comparator_area(int bits, Objective o) const;
  Resources adder_area(int bits, Objective o) const;
  Resources mux_level_area(int bits, Objective o) const;
  Resources priority_encoder_area(int bits, Objective o) const;
  Resources csa_level_area(int bits, Objective o) const;
  Resources lut_logic_area(int bits, Objective o) const;

  // --- configuration memory --------------------------------------------------
  // SRAM configuration cells backing each occupied primitive — the CRAM
  // upset cross-section (src/fault/cram.hpp). Counted as *essential* bits:
  // LUT masks, slice control, and the share of routing a placed design
  // actually drives, not the device's full frame count. Order-of-magnitude
  // Virtex-II-class constants (~780 total config bits/slice device-wide, of
  // which roughly a quarter are design-essential for packed logic).
  int config_bits_per_slice() const { return config_bits_per_slice_; }
  int config_bits_per_bmult() const { return config_bits_per_bmult_; }
  /// Port/aspect/routing configuration only — BRAM *contents* are user
  /// state, already modeled by the accumulator fault site.
  int config_bits_per_bram() const { return config_bits_per_bram_; }

  // --- packing --------------------------------------------------------------
  /// FFs per slice (Virtex-II Pro: 2).
  int ffs_per_slice() const { return ffs_per_slice_; }
  /// Fraction of the flip-flops co-located with already-counted logic slices
  /// that pipelining can actually reach ("pipelining can exploit the unused
  /// flipflops present in the slices").
  double ff_absorption() const { return ff_absorption_; }

  /// Extra area factor applied by SPEED place-and-route (slices burned for
  /// routing) — the paper calls this out explicitly.
  double par_area_factor(Objective o) const;

  // --- ablation hooks --------------------------------------------------------
  /// Override the FF-absorption fraction (ablates the paper's "pipelining
  /// can exploit the unused flipflops" effect). Chainable.
  TechModel& set_ff_absorption(double fraction);
  /// Override the per-stage register overhead (ns). Chainable.
  TechModel& set_register_overhead(double ns);

  // --- power ("XPower"-like) coefficients, at 1.5 V core ---------------------
  /// mW per MHz per 100 FFs of clock-tree + register power.
  double clock_power_coeff() const { return clock_mw_per_mhz_100ff_; }
  /// mW per MHz per 100 LUTs of logic power at 100% toggle activity.
  double logic_power_coeff() const { return logic_mw_per_mhz_100lut_; }
  /// mW per MHz per 100 signal nets at 100% toggle activity.
  double signal_power_coeff() const { return signal_mw_per_mhz_100net_; }
  /// mW per MHz per BMULT at 100% activity.
  double bmult_power_coeff() const { return bmult_mw_per_mhz_; }
  /// mW per MHz per BRAM with its port active.
  double bram_power_coeff() const { return bram_mw_per_mhz_; }
  /// Quiescent (static) power, mW per occupied slice. Excluded from the
  /// unit-level reports (the paper counts "only the clocks, signal and logic
  /// power" there) but charged in kernel-level energy, where the paper says
  /// quiescent power "[has] to be counted for a design on the complete
  /// device".
  double static_power_coeff() const { return static_mw_per_slice_; }

 private:
  // Delay model parameters (ns).
  double lut_ns_;            // one LUT + local net
  double carry_per_bit_ns_;  // carry chain propagation per bit
  double net_ns_;            // average inter-primitive net
  double mux_level_ns_;      // one barrel-shifter level
  double bmult_ns_;          // embedded multiplier block
  double reg_overhead_ns_;
  double speed_delay_factor_;  // SPEED objective delay scaling (<1)
  double speed_area_factor_;   // SPEED objective area scaling (>1)
  double par_speed_factor_;    // SPEED PAR extra slices for routing
  int ffs_per_slice_;
  double ff_absorption_;
  int config_bits_per_slice_;
  int config_bits_per_bmult_;
  int config_bits_per_bram_;
  double clock_mw_per_mhz_100ff_;
  double logic_mw_per_mhz_100lut_;
  double signal_mw_per_mhz_100net_;
  double bmult_mw_per_mhz_;
  double bram_mw_per_mhz_;
  double static_mw_per_slice_;

  double dscale(Objective o) const;
  double ascale(Objective o) const;
};

}  // namespace flopsim::device
