#include "device/device.hpp"

#include <algorithm>

namespace flopsim::device {

int Device::max_instances(const Resources& per_instance) const {
  const int usable_slices =
      static_cast<int>(capacity.slices * usable_fraction);
  int n = per_instance.slices > 0 ? usable_slices / per_instance.slices
                                  : capacity.slices;
  auto limit = [&n](int have, int need) {
    if (need > 0) n = std::min(n, have / need);
  };
  limit(capacity.luts, per_instance.luts);
  limit(capacity.ffs, per_instance.ffs);
  limit(capacity.bmults, per_instance.bmults);
  limit(capacity.brams, per_instance.brams);
  return std::max(0, n);
}

bool Device::fits(const Resources& r) const { return r.fits_in(capacity); }

namespace {

Device make_v2pro(const std::string& name, int slices, int bmults,
                  int brams) {
  Device d;
  d.name = name;
  d.capacity.slices = slices;
  d.capacity.luts = 2 * slices;
  d.capacity.ffs = 2 * slices;
  d.capacity.bmults = bmults;
  d.capacity.brams = brams;
  return d;
}

}  // namespace

Device xc2vp125() { return make_v2pro("XC2VP125", 55616, 556, 556); }
Device xc2vp100() { return make_v2pro("XC2VP100", 44096, 444, 444); }
Device xc2vp50() { return make_v2pro("XC2VP50", 23616, 232, 232); }
Device xc2vp30() { return make_v2pro("XC2VP30", 13696, 136, 136); }
Device xc2vp7() { return make_v2pro("XC2VP7", 4928, 44, 44); }

const std::vector<Device>& device_database() {
  static const std::vector<Device> db = {xc2vp125(), xc2vp100(), xc2vp50(),
                                         xc2vp30(), xc2vp7()};
  return db;
}

std::optional<Device> find_device(const std::string& name) {
  for (const Device& d : device_database()) {
    if (d.name == name) return d;
  }
  return std::nullopt;
}

}  // namespace flopsim::device
