// FPGA device database: capacity of the parts the paper targets.
//
// Capacity is what turns unit-level MHz/slice into device-level GFLOPS: the
// matrix-multiply array instantiates as many PEs as the slice/BMULT/BRAM
// budget allows.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "device/resources.hpp"
#include "device/tech.hpp"

namespace flopsim::device {

struct Device {
  std::string name;
  Resources capacity;
  TechModel tech = TechModel::virtex2pro7();
  /// Fraction of slices realistically usable by the datapath once global
  /// routing/control overhead is paid (full-device designs never reach 100%).
  double usable_fraction = 0.85;

  /// Largest count of identical instances that fit.
  int max_instances(const Resources& per_instance) const;
  bool fits(const Resources& r) const;
};

/// The paper's device: Xilinx Virtex-II Pro XC2VP125, -7 speed grade.
Device xc2vp125();
/// Smaller siblings for scaling studies.
Device xc2vp100();
Device xc2vp50();
Device xc2vp30();
Device xc2vp7();

/// All devices in the database.
const std::vector<Device>& device_database();
/// Lookup by name; nullopt if unknown.
std::optional<Device> find_device(const std::string& name);

}  // namespace flopsim::device
