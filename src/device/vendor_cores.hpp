// Third-party core descriptors for the paper's comparison tables.
//
// The paper compares its cores against Nallatech and Quixilica commercial
// cores (Table 3, 32-bit) and the Northeastern University parameterized
// library of Belanovic & Leeser (Table 4, 64-bit). It compares against
// *published* datapoints, not re-synthesized designs, so we do the same:
// each descriptor encodes pipeline depth, area, and clock rate consistent
// with the era's published figures (see EXPERIMENTS.md for provenance and
// the approximations involved). Qualitative relations the paper highlights
// are preserved: the commercial cores use custom (non-IEEE-interfaced)
// formats and fewer stages, giving lower clock rates but sometimes better
// frequency/area because they omit format-conversion hardware.
#pragma once

#include <string>
#include <vector>

#include "device/resources.hpp"

namespace flopsim::device {

struct VendorCore {
  std::string vendor;     ///< "Nallatech", "Quixilica", "NEU"
  std::string operation;  ///< "add" or "mul"
  int bits = 32;
  int stages = 0;
  Resources area;
  double clock_mhz = 0.0;
  /// Power at 100 MHz (mW); 0 = not published.
  double power_mw_100mhz = 0.0;
  /// True if the core uses a custom format needing conversion modules at
  /// system interfaces (the paper's caveat for Nallatech/Quixilica).
  bool custom_format = false;

  double freq_per_area() const {
    return area.slices > 0 ? clock_mhz / area.slices : 0.0;
  }
};

/// Cores for Table 3 (32-bit comparison).
std::vector<VendorCore> table3_cores();
/// Cores for Table 4 (64-bit comparison).
std::vector<VendorCore> table4_cores();

}  // namespace flopsim::device
