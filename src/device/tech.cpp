#include "device/tech.hpp"

#include <algorithm>
#include <cmath>

namespace flopsim::device {

const char* to_string(Objective o) {
  return o == Objective::kArea ? "AREA" : "SPEED";
}

TechModel TechModel::virtex2pro7() {
  TechModel t;
  // Delay constants (ns) calibrated to the paper's stated datapoints; see
  // header comment.
  t.lut_ns_ = 0.45;
  t.carry_per_bit_ns_ = 0.09;
  t.net_ns_ = 1.20;
  t.mux_level_ns_ = 1.25;
  t.bmult_ns_ = 3.00;
  t.reg_overhead_ns_ = 1.00;
  t.speed_delay_factor_ = 0.88;
  t.speed_area_factor_ = 1.22;
  t.par_speed_factor_ = 1.12;
  t.ffs_per_slice_ = 2;
  t.ff_absorption_ = 0.55;
  // Essential configuration cells per occupied primitive (see header): two
  // 16-bit LUT masks + slice control + used local routing per slice; an
  // embedded MULT18X18 and a BRAM are mostly routing/port configuration.
  t.config_bits_per_slice_ = 200;
  t.config_bits_per_bmult_ = 1800;
  t.config_bits_per_bram_ = 1100;
  // Power coefficients (1.5 V core, mW/MHz scaled per 100 elements).
  t.clock_mw_per_mhz_100ff_ = 0.030;
  t.logic_mw_per_mhz_100lut_ = 0.040;
  t.signal_mw_per_mhz_100net_ = 0.028;
  t.bmult_mw_per_mhz_ = 0.020;
  t.bram_mw_per_mhz_ = 0.040;
  t.static_mw_per_slice_ = 0.025;
  return t;
}

TechModel TechModel::virtex2pro5() {
  TechModel t = virtex2pro7();
  t.lut_ns_ *= 1.2;
  t.carry_per_bit_ns_ *= 1.2;
  t.net_ns_ *= 1.2;
  t.mux_level_ns_ *= 1.2;
  t.bmult_ns_ *= 1.2;
  t.reg_overhead_ns_ *= 1.1;
  return t;
}

double TechModel::dscale(Objective o) const {
  return o == Objective::kSpeed ? speed_delay_factor_ : 1.0;
}

double TechModel::ascale(Objective o) const {
  return o == Objective::kSpeed ? speed_area_factor_ : 1.0;
}

double TechModel::comparator_delay(int bits, Objective o) const {
  // Carry-chain equality/magnitude compare: ~0.0128 ns/bit.
  return (lut_ns_ + net_ns_ + 0.0128 * bits) * dscale(o);
}

double TechModel::adder_delay(int bits, Objective o) const {
  // Carry chain: calibrated so a 54-bit adder needs several chunks to clear
  // 200 MHz (the paper: "a 54bit adder/subtractor can achieve 200MHz with 4
  // pipelining stages").
  return (lut_ns_ + net_ns_ + carry_per_bit_ns_ * bits) * dscale(o);
}

double TechModel::adder_chained_delay(int bits, Objective o) const {
  // Continuing carry chain: per-bit propagation plus a small boundary cost.
  return (0.2 + carry_per_bit_ns_ * bits) * dscale(o);
}

double TechModel::mux_level_delay(int bits, Objective o) const {
  return (mux_level_ns_ + 0.001 * bits) * dscale(o);
}

double TechModel::mux_level_chained_delay(int bits, Objective o) const {
  // Cascaded shifter level: LUT + short local route only.
  return (0.95 + 0.001 * bits) * dscale(o);
}

double TechModel::priority_encoder_delay(int bits, Objective o) const {
  // Wide priority encoders are LUT-tree limited: ~0.05 ns/bit on a 1.7 ns
  // base. At 54 bits this lands below 200 MHz, forcing the split the paper
  // describes ("broken into two smaller priority encoders and a 3-bit
  // adder").
  return (1.70 + 0.05 * bits) * dscale(o);
}

double TechModel::bmult_delay(Objective o) const {
  return bmult_ns_ * dscale(o);
}

double TechModel::csa_level_delay(int bits, Objective o) const {
  return (lut_ns_ + net_ns_ + 0.002 * bits) * dscale(o);
}

double TechModel::csa_level_chained_delay(int bits, Objective o) const {
  return (lut_ns_ + 0.5 * net_ns_ + 0.002 * bits) * dscale(o);
}

double TechModel::lut_logic_delay(Objective o) const {
  return (lut_ns_ + net_ns_) * dscale(o);
}

double TechModel::gate_delay(Objective o) const {
  return lut_ns_ * dscale(o);
}

Resources TechModel::comparator_area(int bits, Objective o) const {
  // The paper: "Comparators take about n/2 slices for a bitwidth of n."
  Resources r;
  r.slices = static_cast<int>(std::ceil(bits / 2.0 * ascale(o)));
  r.luts = bits;
  return r;
}

Resources TechModel::adder_area(int bits, Objective o) const {
  // The paper: adders take about n/2 slices (excluding pipelining).
  Resources r;
  r.slices = static_cast<int>(std::ceil(bits / 2.0 * ascale(o)));
  r.luts = bits;
  return r;
}

Resources TechModel::mux_level_area(int bits, Objective o) const {
  // One level of an n-bit barrel shifter is n 2:1 muxes: n/2 slices. Stacked
  // log2(n) levels give the paper's n*log(n)/2 total.
  Resources r;
  r.slices = static_cast<int>(std::ceil(bits / 2.0 * ascale(o)));
  r.luts = bits;
  return r;
}

Resources TechModel::priority_encoder_area(int bits, Objective o) const {
  Resources r;
  r.slices = static_cast<int>(std::ceil(bits * 0.75 * ascale(o)));
  r.luts = static_cast<int>(bits * 1.5);
  return r;
}

Resources TechModel::csa_level_area(int bits, Objective o) const {
  Resources r;
  r.slices = static_cast<int>(std::ceil(bits / 2.0 * ascale(o)));
  r.luts = bits;
  return r;
}

Resources TechModel::lut_logic_area(int bits, Objective o) const {
  Resources r;
  r.slices = static_cast<int>(std::ceil(bits / 2.0 * ascale(o)));
  r.luts = bits;
  return r;
}

double TechModel::par_area_factor(Objective o) const {
  return o == Objective::kSpeed ? par_speed_factor_ : 1.0;
}

TechModel& TechModel::set_ff_absorption(double fraction) {
  ff_absorption_ = std::clamp(fraction, 0.0, 1.0);
  return *this;
}

TechModel& TechModel::set_register_overhead(double ns) {
  reg_overhead_ns_ = ns;
  return *this;
}

}  // namespace flopsim::device
