#include "device/vendor_cores.hpp"

namespace flopsim::device {

std::vector<VendorCore> table3_cores() {
  std::vector<VendorCore> cores;
  // Nallatech 32-bit cores: fewer stages, custom format (no IEEE interface
  // conversion counted), hence small area and competitive MHz/slice.
  cores.push_back({"Nallatech", "add", 32, 8, {345, 620, 560, 0, 0}, 212.0,
                   0.0, true});
  cores.push_back({"Nallatech", "mul", 32, 6, {182, 330, 290, 4, 0}, 224.0,
                   0.0, true});
  // Quixilica (QinetiQ) 32-bit cores: likewise custom-format.
  cores.push_back({"Quixilica", "add", 32, 9, {291, 540, 510, 0, 0}, 201.0,
                   0.0, true});
  cores.push_back({"Quixilica", "mul", 32, 6, {215, 400, 350, 4, 0}, 181.0,
                   0.0, true});
  return cores;
}

std::vector<VendorCore> table4_cores() {
  std::vector<VendorCore> cores;
  // Belanovic & Leeser parameterized library (FPL 2002), 64-bit instances:
  // portable VHDL, shallow pipelines, hence low clock rates.
  cores.push_back({"NEU", "add", 64, 4, {1090, 2010, 880, 0, 0}, 105.0,
                   385.0, false});
  cores.push_back({"NEU", "mul", 64, 5, {880, 1620, 770, 9, 0}, 110.0,
                   348.0, false});
  return cores;
}

}  // namespace flopsim::device
