#include "fault/cram.hpp"

#include <cmath>

namespace flopsim::fault {

double CramModel::essential_bits(const device::Resources& used) const {
  const double raw =
      static_cast<double>(used.slices) * tech.config_bits_per_slice() +
      static_cast<double>(used.bmults) * tech.config_bits_per_bmult() +
      static_cast<double>(used.brams) * tech.config_bits_per_bram();
  return raw * essential_fraction;
}

double ScrubModel::observe_probability(double mission_s) const {
  const double exposure = mean_exposure_s(mission_s);
  if (exposure <= 0.0 || duty <= 0.0 || kernel_s <= 0.0) return 0.0;
  return 1.0 - std::exp(-duty * exposure / kernel_s);
}

}  // namespace flopsim::fault
