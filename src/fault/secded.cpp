#include "fault/secded.hpp"

#include <array>
#include <bit>

namespace flopsim::fault {

namespace {

constexpr bool is_pow2(int x) { return x > 0 && (x & (x - 1)) == 0; }

// data bit i <-> Hamming codeword position data_pos[i] (the i-th
// non-power-of-two position in [3, 71]).
constexpr std::array<int, kSecdedDataBits> make_data_pos() {
  std::array<int, kSecdedDataBits> pos{};
  int i = 0;
  for (int p = 1; p < kSecdedWordBits; ++p) {
    if (!is_pow2(p)) pos[static_cast<std::size_t>(i++)] = p;
  }
  return pos;
}
constexpr std::array<int, kSecdedDataBits> kDataPos = make_data_pos();

// Inverse map: codeword position -> data bit index, or -1 for check
// positions (0 and the powers of two).
constexpr std::array<int, kSecdedWordBits> make_pos_to_data() {
  std::array<int, kSecdedWordBits> inv{};
  for (int p = 0; p < kSecdedWordBits; ++p) inv[static_cast<std::size_t>(p)] = -1;
  for (int i = 0; i < kSecdedDataBits; ++i) {
    inv[static_cast<std::size_t>(kDataPos[static_cast<std::size_t>(i)])] = i;
  }
  return inv;
}
constexpr std::array<int, kSecdedWordBits> kPosToData = make_pos_to_data();

// Hamming syndrome of the data bits alone: XOR of data_pos[i] over set bits.
int data_syndrome(fp::u64 data) {
  int s = 0;
  while (data != 0) {
    s ^= kDataPos[static_cast<std::size_t>(std::countr_zero(data))];
    data &= data - 1;
  }
  return s;
}

// Check-byte layout: bit 0 = overall parity (position 0), bit 1+k = Hamming
// check bit at position 1<<k.
int check_syndrome(std::uint8_t check) {
  int s = 0;
  for (int k = 0; k < 7; ++k) {
    if (check & (1u << (k + 1))) s ^= 1 << k;
  }
  return s;
}

}  // namespace

std::uint8_t secded_encode(fp::u64 data) {
  const int s = data_syndrome(data);
  std::uint8_t check = 0;
  for (int k = 0; k < 7; ++k) {
    if (s & (1 << k)) check |= static_cast<std::uint8_t>(1u << (k + 1));
  }
  // Overall parity covers every codeword bit (data + the 7 Hamming bits),
  // making total codeword weight even.
  const int ones = std::popcount(data) + std::popcount(static_cast<unsigned>(
                                             check & 0xFEu));
  if (ones & 1) check |= 1u;
  return check;
}

const char* to_string(SecdedStatus s) {
  switch (s) {
    case SecdedStatus::kClean: return "clean";
    case SecdedStatus::kCorrectedData: return "corrected-data";
    case SecdedStatus::kCorrectedCheck: return "corrected-check";
    case SecdedStatus::kDoubleError: return "double-error";
  }
  return "unknown";
}

SecdedDecode secded_decode(fp::u64 data, std::uint8_t check) {
  SecdedDecode d;
  d.data = data;
  d.check = check;
  d.syndrome = data_syndrome(data) ^ check_syndrome(check);
  const int ones = std::popcount(data) + std::popcount(static_cast<unsigned>(check));
  const bool parity_odd = (ones & 1) != 0;

  if (d.syndrome == 0 && !parity_odd) {
    d.status = SecdedStatus::kClean;
    return d;
  }
  if (parity_odd) {
    // Exactly one codeword bit flipped; the syndrome names its position.
    if (d.syndrome == 0) {
      d.check ^= 1u;  // the overall-parity bit itself
      d.status = SecdedStatus::kCorrectedCheck;
    } else if (d.syndrome < kSecdedWordBits &&
               kPosToData[static_cast<std::size_t>(d.syndrome)] >= 0) {
      d.data ^= fp::u64{1}
                << kPosToData[static_cast<std::size_t>(d.syndrome)];
      d.status = SecdedStatus::kCorrectedData;
    } else if (is_pow2(d.syndrome)) {
      d.check ^= static_cast<std::uint8_t>(
          1u << (std::countr_zero(static_cast<unsigned>(d.syndrome)) + 1));
      d.status = SecdedStatus::kCorrectedCheck;
    } else {
      // Syndrome outside the codeword (>= 3 flips): report double-error.
      d.status = SecdedStatus::kDoubleError;
    }
    return d;
  }
  // Even parity with a nonzero syndrome: two flips, detect only.
  d.status = SecdedStatus::kDoubleError;
  return d;
}

device::Resources secded_area(const device::TechModel& tech,
                              device::Objective objective) {
  (void)objective;
  device::Resources r;
  // Each of the 8 check bits XORs ~36 of the 72 codeword bits; a fresh
  // 3-input-per-LUT tree needs ceil((36-1)/3) + 1 ~ 13 LUTs. One such bank
  // for the write-side encoder, one for the read-side syndrome, plus the
  // 7->72 syndrome decode (~24 LUTs) and the 64-bit correction XOR row.
  const int xor_bank = kSecdedCheckBits * 13;
  r.luts = 2 * xor_bank + 24 + kSecdedDataBits;
  r.ffs = kSecdedCheckBits + 8;  // registered syndrome + status flags
  r.slices = (r.luts + 1) / 2;
  // The check byte itself rides in the BRAM parity bits: no extra BRAM.
  const int check_ff_slices = static_cast<int>(
      r.ffs / (tech.ffs_per_slice() * tech.ff_absorption() + 1));
  r.slices += check_ff_slices;
  return r;
}

}  // namespace flopsim::fault
