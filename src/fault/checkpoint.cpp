#include "fault/checkpoint.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#ifndef _WIN32
#include <unistd.h>  // fsync, fileno
#endif

#include "fault/campaign.hpp"
#include "obs/metrics.hpp"

namespace flopsim::fault {

namespace {

constexpr char kHeaderTag[] = "flopsim-checkpoint v1";

obs::Histogram& write_latency_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "checkpoint.write_us",
      {10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
       10000.0});
  return h;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

SpecHash& SpecHash::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= (v >> (8 * i)) & 0xffu;
    h_ *= 0x100000001b3ull;  // FNV prime
  }
  return *this;
}

SpecHash& SpecHash::f64(double v) {
  return u64(std::bit_cast<std::uint64_t>(v));
}

SpecHash& SpecHash::str(std::string_view s) {
  for (const char c : s) {
    h_ ^= static_cast<unsigned char>(c);
    h_ *= 0x100000001b3ull;
  }
  // Length terminator: "ab"+"c" must not collide with "a"+"bc".
  return u64(s.size());
}

std::string SpecHash::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h_));
  return buf;
}

std::uint64_t hash_campaign_spec(const CampaignSpec& spec) {
  SpecHash h;
  h.str("CampaignSpec");
  h.i64(static_cast<long long>(spec.source));
  h.u64(spec.seed);
  h.i64(spec.horizon);
  h.i64(spec.count);
  h.f64(spec.rate);
  h.i64(spec.rows);
  h.i64(spec.word_bits);
  h.i64(spec.scrub_period_cycles);
  h.i64(spec.mask_bits);
  h.i64(static_cast<long long>(spec.faults.size()));
  for (const Fault& f : spec.faults) {
    h.i64(f.cycle)
        .i64(static_cast<long long>(f.site))
        .i64(f.index)
        .i64(f.lane)
        .i64(f.bit)
        .u64(f.mask)
        .u64(f.stuck)
        .i64(f.repair_cycle);
  }
  if (spec.profile != nullptr) {
    h.i64(spec.profile->stages());
    for (const auto& stage : spec.profile->occupied) {
      for (const fp::u64 mask : stage) h.u64(mask);
    }
    h.i64(spec.profile->include_valid ? 1 : 0);
    h.i64(spec.profile->include_flags ? 1 : 0);
  }
  return h.value();
}

std::string checkpoint_path(const std::string& dir,
                            std::uint64_t spec_hash) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(spec_hash));
  return dir + "/" + buf + ".ckpt";
}

CheckpointLoad load_checkpoint(const std::string& path) {
  CheckpointLoad load;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return load;

  char line[1 << 16];
  // Header: "flopsim-checkpoint v1 spec=<hex> count=<n> chunk=<n>".
  if (std::fgets(line, sizeof line, f) == nullptr) {
    std::fclose(f);
    return load;
  }
  unsigned long long spec = 0, count = 0, chunk = 0;
  char tag[32] = {0}, version[8] = {0};
  if (std::sscanf(line, "%31s %7s spec=%llx count=%llu chunk=%llu", tag,
                  version, &spec, &count, &chunk) != 5 ||
      std::string(tag) + " " + version != kHeaderTag || chunk == 0) {
    std::fclose(f);
    return load;
  }
  load.found = true;
  load.spec_hash = spec;
  load.count = count;
  load.chunk = chunk;
  const std::size_t nchunks =
      count == 0 ? 0 : (count + chunk - 1) / chunk;

  // Chunk records: "c <index> <hex>". Stop at the first malformed line —
  // a crash mid-append tears at most the tail, and everything after a
  // tear is unaccounted for anyway. The record length is whatever the
  // writer appended (1 byte/trial for campaigns, a fixed struct for depth
  // sweeps); the caller's restore path validates it against its own
  // expected size, so the loader only insists on well-formed hex.
  while (std::fgets(line, sizeof line, f) != nullptr) {
    unsigned long long index = 0;
    int hex_at = -1;
    if (std::sscanf(line, "c %llu %n", &index, &hex_at) != 1 || hex_at < 0) {
      break;
    }
    if (index >= nchunks) break;
    std::vector<std::uint8_t> data;
    const char* p = line + hex_at;
    bool good = true;
    while (*p != '\n' && *p != '\0') {
      const int hi = hex_nibble(p[0]);
      const int lo = hi < 0 ? -1 : hex_nibble(p[1]);
      if (lo < 0) {
        good = false;
        break;
      }
      data.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
      p += 2;
    }
    if (!good || data.empty()) break;
    load.chunks[index] = std::move(data);
  }
  std::fclose(f);
  return load;
}

CheckpointWriter::CheckpointWriter(std::string path, std::uint64_t spec_hash,
                                   std::size_t count, std::size_t chunk,
                                   long fsync_interval, bool fresh)
    : path_(std::move(path)), fsync_interval_(fsync_interval) {
  std::error_code ec;  // best-effort; open failure is reported below
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent, ec);
  file_ = std::fopen(path_.c_str(), fresh ? "w" : "a");
  if (file_ == nullptr) {
    std::fprintf(stderr,
                 "warning: checkpoint disabled: cannot open %s (%s)\n",
                 path_.c_str(), std::strerror(errno));
    return;
  }
  if (fresh) {
    if (std::fprintf(file_, "%s spec=%016llx count=%llu chunk=%llu\n",
                     kHeaderTag,
                     static_cast<unsigned long long>(spec_hash),
                     static_cast<unsigned long long>(count),
                     static_cast<unsigned long long>(chunk)) < 0) {
      fail("write header");
      return;
    }
    dirty_ = true;
    flush();  // a resumable file exists before any trial runs
  }
}

CheckpointWriter::~CheckpointWriter() {
  if (file_ != nullptr) {
    flush();
    std::fclose(file_);
  }
}

void CheckpointWriter::fail(const char* what) {
  std::fprintf(stderr, "warning: checkpoint disabled: %s failed for %s\n",
               what, path_.c_str());
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

void CheckpointWriter::append(std::size_t chunk_index,
                              const std::vector<std::uint8_t>& data) {
  if (file_ == nullptr) return;
  const auto t0 = std::chrono::steady_clock::now();
  std::string record = "c " + std::to_string(chunk_index) + " ";
  record.reserve(record.size() + 2 * data.size() + 1);
  static const char* kHex = "0123456789abcdef";
  for (const std::uint8_t b : data) {
    record += kHex[b >> 4];
    record += kHex[b & 0xf];
  }
  record += '\n';
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    fail("append");
    return;
  }
  dirty_ = true;
  ++appends_since_sync_;
  if (fsync_interval_ > 0 && appends_since_sync_ >= fsync_interval_) {
    flush();
  }
  obs::Registry& reg = obs::Registry::global();
  reg.counter("checkpoint.appends").inc();
  reg.counter("checkpoint.bytes").add(static_cast<long>(record.size()));
  write_latency_histogram().observe(
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void CheckpointWriter::flush() {
  if (file_ == nullptr || !dirty_) return;
  if (std::fflush(file_) != 0) {
    fail("flush");
    return;
  }
#ifndef _WIN32
  if (fsync(fileno(file_)) != 0) {
    fail("fsync");
    return;
  }
#endif
  appends_since_sync_ = 0;
  dirty_ = false;
  obs::Registry::global().counter("checkpoint.fsyncs").inc();
}

std::unique_ptr<CheckpointWriter> rewrite_checkpoint(
    const std::string& path, std::uint64_t spec_hash, std::size_t count,
    std::size_t chunk, long fsync_interval,
    const std::map<std::size_t, std::vector<std::uint8_t>>& chunks) {
  const std::string tmp = path + ".tmp";
  auto writer = std::make_unique<CheckpointWriter>(
      tmp, spec_hash, count, chunk, fsync_interval, /*fresh=*/true);
  for (const auto& [index, data] : chunks) writer->append(index, data);
  writer->flush();
  if (writer->ok()) {
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      // The open FILE* follows the inode, so appends keep landing in the
      // .tmp file — recoverable by hand, but resume won't find it.
      std::fprintf(stderr,
                   "warning: checkpoint rename %s -> %s failed (%s); "
                   "checkpoint continues under the .tmp name\n",
                   tmp.c_str(), path.c_str(), ec.message().c_str());
    }
  }
  return writer;
}

}  // namespace flopsim::fault
