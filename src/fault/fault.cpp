#include "fault/fault.hpp"

#include <stdexcept>

namespace flopsim::fault {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kStageLatch: return "latch";
    case FaultSite::kAccumulator: return "accumulator";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::vector<Fault> faults)
    : faults_(std::move(faults)), armed_(faults_.size(), 1) {
  for (const Fault& f : faults_) {
    if (f.bit < 0 || f.bit >= 64) {
      throw std::invalid_argument("FaultInjector: bit out of [0, 64)");
    }
    if (f.site == FaultSite::kStageLatch &&
        (f.lane >= rtl::kMaxSignals || f.lane < kFlagsLane)) {
      throw std::invalid_argument("FaultInjector: bad latch lane");
    }
  }
}

void FaultInjector::apply_latch_fault(std::size_t i, rtl::SignalSet& latch) {
  const Fault& f = faults_[i];
  AppliedFault log{f, 0, 0};
  if (f.lane == kValidLane) {
    log.before = latch.valid ? 1 : 0;
    latch.valid = !latch.valid;
    log.after = latch.valid ? 1 : 0;
  } else if (f.lane == kFlagsLane) {
    log.before = latch.flags;
    latch.flags ^= static_cast<std::uint8_t>(1u << (f.bit & 7));
    log.after = latch.flags;
  } else {
    log.before = latch[f.lane];
    latch[f.lane] ^= fp::u64{1} << f.bit;
    log.after = latch[f.lane];
  }
  applied_.push_back(log);
}

void FaultInjector::on_latch(long cycle, int stage, rtl::SignalSet& latch) {
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!armed_[i]) continue;
    const Fault& f = faults_[i];
    if (f.site != FaultSite::kStageLatch || f.cycle != cycle ||
        f.index != stage) {
      continue;
    }
    armed_[i] = 0;
    apply_latch_fault(i, latch);
  }
}

void FaultInjector::on_storage(long cycle, std::vector<fp::u64>& acc) {
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!armed_[i]) continue;
    const Fault& f = faults_[i];
    if (f.site != FaultSite::kAccumulator || f.cycle != cycle) continue;
    armed_[i] = 0;
    if (f.index < 0 || f.index >= static_cast<int>(acc.size())) continue;
    AppliedFault log{f, acc[static_cast<std::size_t>(f.index)], 0};
    acc[static_cast<std::size_t>(f.index)] ^= fp::u64{1} << f.bit;
    log.after = acc[static_cast<std::size_t>(f.index)];
    applied_.push_back(log);
  }
}

void FaultInjector::rewind() {
  armed_.assign(faults_.size(), 1);
  applied_.clear();
}

}  // namespace flopsim::fault
