#include "fault/fault.hpp"

#include <stdexcept>

#include "fault/secded.hpp"

namespace flopsim::fault {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kStageLatch: return "latch";
    case FaultSite::kAccumulator: return "accumulator";
    case FaultSite::kConfig: return "config";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::vector<Fault> faults)
    : faults_(std::move(faults)),
      armed_(faults_.size(), 1),
      logged_(faults_.size(), 0) {
  for (const Fault& f : faults_) {
    const int bit_limit =
        f.site == FaultSite::kAccumulator ? kSecdedWordBits : 64;
    if (f.bit < 0 || f.bit >= bit_limit) {
      throw std::invalid_argument("FaultInjector: bit out of range");
    }
    if (f.site == FaultSite::kStageLatch &&
        (f.lane >= rtl::kMaxSignals || f.lane < kFlagsLane)) {
      throw std::invalid_argument("FaultInjector: bad latch lane");
    }
    if (f.site == FaultSite::kConfig) {
      // Config upsets rewire datapath logic: data lanes only, and the
      // stuck mask must name at least one driven bit.
      if (f.lane < 0 || f.lane >= rtl::kMaxSignals) {
        throw std::invalid_argument("FaultInjector: bad config lane");
      }
      if (f.mask == 0) {
        throw std::invalid_argument("FaultInjector: empty config stuck mask");
      }
    }
  }
}

void FaultInjector::apply_latch_fault(std::size_t i, rtl::SignalSet& latch) {
  const Fault& f = faults_[i];
  AppliedFault log{f, 0, 0};
  if (f.lane == kValidLane) {
    log.before = latch.valid ? 1 : 0;
    latch.valid = !latch.valid;
    log.after = latch.valid ? 1 : 0;
  } else if (f.lane == kFlagsLane) {
    log.before = latch.flags;
    latch.flags ^= static_cast<std::uint8_t>(1u << (f.bit & 7));
    log.after = latch.flags;
  } else {
    log.before = latch[f.lane];
    latch[f.lane] ^= fp::u64{1} << f.bit;
    log.after = latch[f.lane];
  }
  applied_.push_back(log);
}

void FaultInjector::on_latch(long cycle, int stage, rtl::SignalSet& latch) {
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!armed_[i]) continue;
    const Fault& f = faults_[i];
    if (f.index != stage) continue;
    if (f.site == FaultSite::kStageLatch) {
      if (f.cycle != cycle) continue;
      armed_[i] = 0;
      apply_latch_fault(i, latch);
    } else if (f.site == FaultSite::kConfig) {
      if (cycle < f.cycle) continue;
      if (f.repair_cycle >= 0 && cycle >= f.repair_cycle) {
        armed_[i] = 0;  // scrubbed back; stop checking
        continue;
      }
      const fp::u64 before = latch[f.lane];
      latch[f.lane] = (before & ~f.mask) | (f.stuck & f.mask);
      if (!logged_[i]) {
        logged_[i] = 1;
        applied_.push_back(AppliedFault{f, before, latch[f.lane]});
      }
    }
  }
}

void FaultInjector::on_storage(long cycle, std::vector<fp::u64>& acc) {
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!armed_[i]) continue;
    const Fault& f = faults_[i];
    if (f.site != FaultSite::kAccumulator || f.cycle != cycle ||
        f.bit >= kSecdedDataBits) {
      continue;  // check-byte strikes are delivered via on_check_bits
    }
    armed_[i] = 0;
    if (f.index < 0 || f.index >= static_cast<int>(acc.size())) continue;
    AppliedFault log{f, acc[static_cast<std::size_t>(f.index)], 0};
    acc[static_cast<std::size_t>(f.index)] ^= fp::u64{1} << f.bit;
    log.after = acc[static_cast<std::size_t>(f.index)];
    applied_.push_back(log);
  }
}

void FaultInjector::on_check_bits(long cycle,
                                  std::vector<std::uint8_t>& check) {
  for (std::size_t i = 0; i < faults_.size(); ++i) {
    if (!armed_[i]) continue;
    const Fault& f = faults_[i];
    if (f.site != FaultSite::kAccumulator || f.cycle != cycle ||
        f.bit < kSecdedDataBits) {
      continue;
    }
    armed_[i] = 0;
    if (f.index < 0 || f.index >= static_cast<int>(check.size())) continue;
    AppliedFault log{f, check[static_cast<std::size_t>(f.index)], 0};
    check[static_cast<std::size_t>(f.index)] ^=
        static_cast<std::uint8_t>(1u << (f.bit - kSecdedDataBits));
    log.after = check[static_cast<std::size_t>(f.index)];
    applied_.push_back(log);
  }
}

void FaultInjector::rewind() {
  armed_.assign(faults_.size(), 1);
  logged_.assign(faults_.size(), 0);
  applied_.clear();
}

}  // namespace flopsim::fault
