// Seeded, reproducible fault campaigns.
//
// A campaign is a fault list. It can be given explicitly, drawn uniformly
// over the *occupied* latch-bit space of a unit (bits observed carrying
// data under a calibration workload — the architectural-vulnerability-
// factor denominator), drawn from a Poisson upset-rate model (upsets per
// bit-cycle over the physical state bits, the way raw fabric upset rates
// are quoted), aimed at PE accumulator words, or placed in configuration
// memory (persistent stuck-logic faults bounded by a scrub period).
// Everything is driven by one std::mt19937_64 with an explicit algorithm
// on top, so the same seed yields the same fault list on every platform
// and every run.
//
// All sources funnel through one declarative description, CampaignSpec,
// and a single constructor, FaultCampaign::make(spec). The per-source
// static factories remain as thin wrappers: make() with equal parameters
// reproduces their fault lists exactly (same RNG draw sequence).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "rtl/evaluator.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::fault {

/// Per-stage OR-mask of every latch bit observed set during a calibration
/// run — the sample space for random latch faults. Bits that never carry a
/// one under the workload are excluded: flipping them is either impossible
/// (the lane is unused by this unit) or equivalent to flipping an occupied
/// bit at another time.
struct LatchProfile {
  std::vector<std::array<fp::u64, rtl::kMaxSignals>> occupied;
  bool include_valid = false;  ///< also sample the DONE bit
  bool include_flags = false;  ///< also sample the carried flag byte

  int stages() const { return static_cast<int>(occupied.size()); }
  /// Occupied data bits (plus valid/flag bits when included) per stage,
  /// summed — the AVF denominator.
  long total_bits() const;
};

/// Drive `vectors` deterministic operands (plus drain bubbles) through a
/// fresh clone of the unit's pipeline and OR every latch observed. The
/// passed unit is never touched (const-correct: safe to call on a probe
/// shared across campaign worker threads).
LatchProfile profile_unit_latches(const units::FpUnit& unit, int vectors,
                                  std::uint64_t seed);

/// Deterministic operand stream for campaigns: uniform encodings of the
/// unit's format with alternating subtract for adders. The same (fmt,
/// count, seed) always yields the same stream.
std::vector<units::UnitInput> campaign_workload(units::UnitKind kind,
                                                fp::FpFormat fmt, int count,
                                                std::uint64_t seed);

/// Declarative campaign description: pick a source, fill the fields that
/// source reads (the others are ignored), hand it to FaultCampaign::make.
struct CampaignSpec {
  enum class Source {
    kList,         ///< the explicit `faults` list, verbatim
    kRandom,       ///< `count` uniform draws over `profile` x horizon
    kPoisson,      ///< Poisson(`rate` x profile bits x horizon) draws
    kAccumulator,  ///< `count` single-bit accumulator upsets
    kCram,         ///< `count` persistent configuration upsets
  };

  Source source = Source::kList;
  std::uint64_t seed = 0;
  /// Campaign length in cycles; fault strike times are uniform in
  /// [0, horizon). Read by every random source.
  long horizon = 0;

  std::vector<Fault> faults;  ///< kList only

  /// Occupied-bit sample space (kRandom / kPoisson / kCram). Borrowed, not
  /// owned: must outlive the make() call (not the campaign).
  const LatchProfile* profile = nullptr;

  int count = 0;      ///< kRandom / kAccumulator / kCram: faults to place
  double rate = 0.0;  ///< kPoisson: upsets per bit-cycle

  int rows = 0;        ///< kAccumulator: accumulator bank depth
  int word_bits = 64;  ///< kAccumulator: bits sampled per word (<= 72;
                       ///< > 64 reaches the SECDED check byte)

  /// kCram: cycles between scrub passes; a struck configuration repairs at
  /// the next scrub boundary after the strike. <= 0 means never repaired.
  long scrub_period_cycles = 0;
  /// kCram: width of the stuck mask a single upset imposes — a LUT/routing
  /// flip typically perturbs a couple of adjacent signal bits, not one.
  int mask_bits = 2;

  /// How the campaign drivers evaluate the trials this spec seeds
  /// (rtl::Evaluator backend selection; see SeuCampaignConfig::backend).
  /// Purely advisory here: fault drawing ignores it, and it never enters
  /// a campaign's checkpoint spec hash — every backend produces the same
  /// tallies, so sidecars stay shareable across backends.
  rtl::EvalBackend backend = rtl::EvalBackend::kAuto;
};

class FaultCampaign {
 public:
  /// The one constructor: build the fault list `spec` describes. Equal
  /// parameters reproduce the corresponding legacy factory exactly.
  static FaultCampaign make(const CampaignSpec& spec);

  /// An explicit fault list.
  static FaultCampaign from_list(std::vector<Fault> faults);

  /// `count` faults uniform over the profile's occupied bits x stages x
  /// [0, horizon) cycles.
  /// Deprecated: fill a CampaignSpec (Source::kRandom) and call make().
  [[deprecated("use CampaignSpec{Source::kRandom} + FaultCampaign::make")]]
  static FaultCampaign random(const LatchProfile& profile, long horizon,
                              int count, std::uint64_t seed);

  /// Poisson upset-rate model: the number of faults is Poisson-distributed
  /// with mean `upsets_per_bit_cycle * profile.total_bits() * horizon`,
  /// each fault then placed like random().
  /// Deprecated: fill a CampaignSpec (Source::kPoisson) and call make().
  [[deprecated("use CampaignSpec{Source::kPoisson} + FaultCampaign::make")]]
  static FaultCampaign poisson(const LatchProfile& profile, long horizon,
                               double upsets_per_bit_cycle,
                               std::uint64_t seed);

  /// `count` single-bit accumulator upsets: row uniform in [0, rows),
  /// bit uniform in [0, word_bits), cycle uniform in [0, horizon).
  /// Deprecated: fill a CampaignSpec (Source::kAccumulator), call make().
  [[deprecated(
      "use CampaignSpec{Source::kAccumulator} + FaultCampaign::make")]]
  static FaultCampaign random_accumulator(int rows, int word_bits,
                                          long horizon, int count,
                                          std::uint64_t seed);

  /// `count` persistent configuration upsets (FaultSite::kConfig): the
  /// struck site is uniform over the profile's occupied *data* bits, the
  /// stuck mask covers `mask_bits` occupied bits upward from it, the stuck
  /// value is a random draw under that mask, and the fault repairs at the
  /// first scrub boundary after the strike (never, if no scrub period).
  /// Deprecated: fill a CampaignSpec (Source::kCram) and call make().
  [[deprecated("use CampaignSpec{Source::kCram} + FaultCampaign::make")]]
  static FaultCampaign cram(const LatchProfile& profile, long horizon,
                            int count, std::uint64_t seed,
                            long scrub_period_cycles = 0, int mask_bits = 2);

  const std::vector<Fault>& faults() const { return faults_; }
  bool empty() const { return faults_.empty(); }
  std::size_t size() const { return faults_.size(); }

  FaultInjector make_injector() const { return FaultInjector(faults_); }

 private:
  static FaultCampaign make_impl(const CampaignSpec& spec);

  std::vector<Fault> faults_;
};

}  // namespace flopsim::fault
