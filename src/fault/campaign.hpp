// Seeded, reproducible fault campaigns.
//
// A campaign is a fault list. It can be given explicitly, drawn uniformly
// over the *occupied* latch-bit space of a unit (bits observed carrying
// data under a calibration workload — the architectural-vulnerability-
// factor denominator), or drawn from a Poisson upset-rate model (upsets
// per bit-cycle over the physical state bits, the way raw fabric upset
// rates are quoted). Everything is driven by one std::mt19937_64 with an
// explicit algorithm on top, so the same seed yields the same fault list
// on every platform and every run.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::fault {

/// Per-stage OR-mask of every latch bit observed set during a calibration
/// run — the sample space for random latch faults. Bits that never carry a
/// one under the workload are excluded: flipping them is either impossible
/// (the lane is unused by this unit) or equivalent to flipping an occupied
/// bit at another time.
struct LatchProfile {
  std::vector<std::array<fp::u64, rtl::kMaxSignals>> occupied;
  bool include_valid = false;  ///< also sample the DONE bit
  bool include_flags = false;  ///< also sample the carried flag byte

  int stages() const { return static_cast<int>(occupied.size()); }
  /// Occupied data bits (plus valid/flag bits when included) per stage,
  /// summed — the AVF denominator.
  long total_bits() const;
};

/// Drive `vectors` deterministic operands (plus drain bubbles) through a
/// fresh copy of the unit's pipeline and OR every latch observed. The unit
/// is reset before and after.
LatchProfile profile_unit_latches(units::FpUnit& unit, int vectors,
                                  std::uint64_t seed);

/// Deterministic operand stream for campaigns: uniform encodings of the
/// unit's format with alternating subtract for adders. The same (fmt,
/// count, seed) always yields the same stream.
std::vector<units::UnitInput> campaign_workload(units::UnitKind kind,
                                                fp::FpFormat fmt, int count,
                                                std::uint64_t seed);

class FaultCampaign {
 public:
  /// An explicit fault list.
  static FaultCampaign from_list(std::vector<Fault> faults);

  /// `count` faults uniform over the profile's occupied bits x stages x
  /// [0, horizon) cycles.
  static FaultCampaign random(const LatchProfile& profile, long horizon,
                              int count, std::uint64_t seed);

  /// Poisson upset-rate model: the number of faults is Poisson-distributed
  /// with mean `upsets_per_bit_cycle * profile.total_bits() * horizon`,
  /// each fault then placed like random().
  static FaultCampaign poisson(const LatchProfile& profile, long horizon,
                               double upsets_per_bit_cycle,
                               std::uint64_t seed);

  /// `count` single-bit accumulator upsets: row uniform in [0, rows),
  /// bit uniform in [0, word_bits), cycle uniform in [0, horizon).
  static FaultCampaign random_accumulator(int rows, int word_bits,
                                          long horizon, int count,
                                          std::uint64_t seed);

  const std::vector<Fault>& faults() const { return faults_; }
  bool empty() const { return faults_.empty(); }
  std::size_t size() const { return faults_.size(); }

  FaultInjector make_injector() const { return FaultInjector(faults_); }

 private:
  std::vector<Fault> faults_;
};

}  // namespace flopsim::fault
