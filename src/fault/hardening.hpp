// Reliability-hardened variants of a generated FP core.
//
// Four classic unit-level schemes, built from pieces the library already
// costs honestly through the technology model:
//
//  * kParity     — one parity bit per stage latch word, checked one stage
//                  downstream. Detects every odd-weight latch upset
//                  (single-bit: always); corrects nothing.
//  * kResidue    — residue-mod-3 checking on the significand datapath
//                  (the textbook low-cost check for multipliers). Detects
//                  upsets whose corruption reaches the result significand;
//                  sign/exponent/flag-only corruptions escape.
//  * kDuplicate  — duplicate-and-compare: a full second copy plus a word
//                  comparator on the registered outputs. Detects every
//                  output-corrupting upset by construction.
//  * kTmr        — triple modular redundancy with a bitwise majority
//                  voter. Corrects every single-copy upset.
//  * kEcc        — SECDED(72,64) on the PE's BRAM accumulator bank
//                  (secded.hpp): corrects single-bit storage upsets on
//                  read, detects double-bit ones. A storage scheme — the
//                  unit datapath itself is unhardened, so at unit level it
//                  steps like kNone; its effect shows up in the kernel
//                  campaign (PeConfig::ecc_accumulators).
//
// Duplicate and TMR are *simulated* (two/three real pipelines stepped in
// lockstep, faults injected into copy 0 only, outputs compared/voted
// bit-by-bit); parity and residue apply their detection rule to the real
// injected run. Costs (area, frequency, power) always come from the same
// tech.hpp / unit_power.hpp models as the unhardened cores.
#pragma once

#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "power/unit_power.hpp"
#include "units/fp_unit.hpp"

namespace flopsim::fault {

enum class Scheme { kNone, kParity, kResidue, kDuplicate, kTmr, kEcc };

const char* to_string(Scheme s);
/// Parse "none|parity|residue|dup|duplicate|tmr|ecc|secded"; nullopt on
/// anything else. The non-throwing primitive every CLI flag should route
/// through (usage + exit 2 beats an uncaught exception).
std::optional<Scheme> try_parse_scheme(const std::string& name);
/// Throwing wrapper over try_parse_scheme (std::invalid_argument).
Scheme parse_scheme(const std::string& name);

/// Cost of hardening relative to the unhardened core, at the same depth.
struct HardeningCost {
  device::Resources base;      ///< unhardened post-PAR area
  device::Resources overhead;  ///< added logic/registers/copies
  device::Resources total;
  double base_freq_mhz = 0.0;
  double freq_mhz = 0.0;
  double area_factor = 1.0;   ///< total.slices / base.slices
  double freq_factor = 1.0;   ///< freq / base_freq
  double base_power_mw_100 = 0.0;  ///< dynamic mW at 100 MHz
  double power_mw_100 = 0.0;
  double power_factor = 1.0;
  int extra_latency_cycles = 0;  ///< registered compare/vote stages
};

HardeningCost hardening_cost(const units::FpUnit& unit, Scheme scheme);

/// A hardened core stepped cycle-accurately. Faults are armed per campaign
/// and injected into copy 0 only (the single-event-upset assumption: one
/// particle strikes one copy).
class HardenedUnit {
 public:
  HardenedUnit(units::UnitKind kind, fp::FpFormat fmt,
               const units::UnitConfig& cfg, Scheme scheme);

  /// Arm a campaign on copy 0; replaces any previous one. Returns the live
  /// injector (owned by the unit) for log inspection.
  FaultInjector& arm(const FaultCampaign& campaign);
  /// Detach and drop the armed injector.
  void disarm();

  struct Output {
    /// Copy 0's own registered output (the faulty copy).
    std::optional<units::UnitOutput> raw;
    /// Post-voter/checker architectural output.
    std::optional<units::UnitOutput> out;
    /// The checker fired / copies disagreed on this cycle.
    bool mismatch = false;
  };

  /// Step every copy with the same input and evaluate the checker/voter.
  Output step(const std::optional<units::UnitInput>& in);

  /// Drop in-flight state and detection counters (armed faults persist;
  /// call arm() again or FaultInjector::rewind() to replay them).
  void reset();

  /// A fresh (reset, disarmed) hardened unit with the same kind, format,
  /// configuration and scheme — one per campaign worker.
  HardenedUnit clone() const {
    return HardenedUnit(primary().kind(), primary().format(),
                        primary().config(), scheme_);
  }

  Scheme scheme() const { return scheme_; }
  const units::FpUnit& primary() const { return copies_.front(); }
  long detections() const { return detections_; }
  HardeningCost cost() const { return hardening_cost(primary(), scheme_); }

 private:
  Scheme scheme_;
  std::vector<units::FpUnit> copies_;
  std::optional<FaultInjector> injector_;
  std::queue<units::UnitOutput> expected_;  // residue: golden per issue
  std::size_t seen_applied_ = 0;            // parity: injector log cursor
  long detections_ = 0;
};

}  // namespace flopsim::fault
