// Configuration-memory (CRAM) upset and scrubbing models.
//
// On an SRAM-based FPGA the user design itself is stored in configuration
// memory: LUT truth tables, routing mux selects, control bits. A particle
// strike there does not flip one latched datum — it rewires the circuit,
// and the corruption persists until the configuration is repaired. Two
// things bound that exposure:
//
//  * CramModel maps a core's resource footprint (device::Resources against
//    the TechModel's per-primitive essential-bit counts) to the number of
//    configuration bits whose upset actually changes behaviour — the
//    "essential bits" of vendor soft-error tooling. Most CRAM bits in a
//    frame belong to unused fabric; only the essential fraction matters.
//
//  * ScrubModel captures periodic configuration scrubbing (readback +
//    rewrite of the golden bitstream). Scrubbing cannot prevent an upset,
//    but it converts an unbounded persistent fault into a bounded exposure
//    window: a strike uniformly distributed inside a scrub period sits in
//    the design for period/2 on average before repair.
//
// The cycle-level twin of these rate models is FaultSite::kConfig in
// fault.hpp: a struck piece forces a stuck value under a mask on one stage
// latch lane from the strike edge until its repair edge.
#pragma once

#include "device/resources.hpp"
#include "device/tech.hpp"

namespace flopsim::fault {

/// Essential-configuration-bit accounting for a resource footprint.
struct CramModel {
  device::TechModel tech = device::TechModel::virtex2pro7();
  /// Fraction of a used primitive's configuration bits whose upset is
  /// design-visible (vendor essential-bit reports sit well below 1.0 even
  /// for occupied logic; routing dominates and most mux bits are benign).
  double essential_fraction = 0.4;

  /// Essential configuration bits for a design occupying @p used.
  /// BRAM *contents* are user state (FaultSite::kAccumulator), so only the
  /// block's interface/initialisation configuration is counted here.
  double essential_bits(const device::Resources& used) const;

  /// Same, in Mbit — the unit SEU rates are quoted in.
  double essential_mbit(const device::Resources& used) const {
    return essential_bits(used) / 1.0e6;
  }
};

/// Periodic configuration scrubbing with a duty-cycled mission profile.
struct ScrubModel {
  /// Seconds between scrub passes over the full device; <= 0 disables
  /// scrubbing (a configuration upset then persists for the mission).
  double period_s = 0.0;
  /// Fraction of wall time the kernel is actually streaming data (an upset
  /// landing in an idle window is repaired before it can corrupt output).
  double duty = 1.0;
  /// Seconds one kernel invocation runs — the granularity at which a
  /// persistent fault produces one corrupted result set.
  double kernel_s = 1.0e-3;

  bool enabled() const { return period_s > 0.0; }

  /// Mean residence time of a configuration upset: period/2 under
  /// scrubbing, else half the mission (uniform strike time).
  double mean_exposure_s(double mission_s) const {
    return 0.5 * (enabled() ? period_s : mission_s);
  }

  /// Probability that a configuration upset corrupts at least one kernel
  /// invocation before repair: 1 - exp(-duty * exposure / kernel_s).
  /// Monotone in the scrub period — the knob the bench sweeps.
  double observe_probability(double mission_s) const;
};

}  // namespace flopsim::fault
