// Crash-safe campaign checkpoints.
//
// A Monte-Carlo campaign's unit of recoverable work is one grid chunk of
// trials (exec::parallel_for_grid): chunk boundaries are a pure function
// of (trial count, chunk size), every trial verdict lands in its own
// pre-sized slot, and the final tallies are an ordered fold over those
// slots. So a checkpoint is simply the set of finished chunks with their
// encoded verdict slots, appended to a sidecar file as each chunk
// completes. On resume the stored chunks are decoded back into their
// slots and skipped; the remaining chunks re-run on the same grid; the
// ordered reduction replays — bit-identical to an uninterrupted run at
// any thread count.
//
// The sidecar is keyed by a content hash of the campaign description
// (unit kind, precision, depth, hardening, seeds, trial count, chunk
// size — whatever the caller folds into SpecHash). A resume against a
// file whose key disagrees is refused: silently mixing two campaigns'
// tallies is the one corruption this layer exists to prevent.
//
// File format (line-oriented text, append-only, torn-tail tolerant):
//
//   flopsim-checkpoint v1 spec=<16 hex> count=<trials> chunk=<size>
//   c <chunk-index> <hex verdict bytes>
//   ...
//
// A crash can only tear the final line; the loader stops at the first
// malformed line and keeps everything before it. Appends are fsync'd
// every `fsync_interval` chunks (and at close), trading durability
// window against write latency — the obs registry records both the
// append latency histogram and the fsync count.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace flopsim::fault {

struct CampaignSpec;

/// FNV-1a 64-bit accumulator for content-addressing campaign specs. Field
/// order matters: hash the same fields in the same order to get the same
/// key on every platform.
class SpecHash {
 public:
  SpecHash& u64(std::uint64_t v);
  SpecHash& i64(long long v) { return u64(static_cast<std::uint64_t>(v)); }
  SpecHash& f64(double v);
  SpecHash& str(std::string_view s);

  std::uint64_t value() const { return h_; }
  /// 16 lowercase hex digits — the sidecar key and filename stem.
  std::string hex() const;

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// Content hash of a CampaignSpec: source, seed, horizon, counts, rates,
/// geometry, the explicit fault list (kList), and the profile's occupied
/// bits when present. Equal specs hash equal on every platform.
std::uint64_t hash_campaign_spec(const CampaignSpec& spec);

/// Sidecar path for a spec hash under a checkpoint directory.
std::string checkpoint_path(const std::string& dir, std::uint64_t spec_hash);

/// Parsed sidecar contents.
struct CheckpointLoad {
  bool found = false;  ///< file existed and had a well-formed header
  std::uint64_t spec_hash = 0;
  std::size_t count = 0;  ///< trial count the grid was built over
  std::size_t chunk = 0;  ///< grid chunk size
  std::map<std::size_t, std::vector<std::uint8_t>> chunks;
};

/// Read a sidecar. Missing file => found=false. A malformed line (the
/// torn tail of a crashed append) ends the scan; chunks before it are
/// kept. Chunk indices at or beyond the grid are dropped.
CheckpointLoad load_checkpoint(const std::string& path);

/// Append-only sidecar writer. Thread-compatible, not thread-safe: the
/// grid engine serializes on_chunk_done callbacks, which is where appends
/// happen. I/O errors warn once on stderr and latch ok()==false; the
/// campaign keeps running (losing the checkpoint must never lose the run).
class CheckpointWriter {
 public:
  /// Open `path` for appending. When `fresh`, truncate and write a new
  /// header; otherwise the file is expected to carry a valid header
  /// already (the resume path). fsync_interval <= 0 syncs only at close.
  CheckpointWriter(std::string path, std::uint64_t spec_hash,
                   std::size_t count, std::size_t chunk, long fsync_interval,
                   bool fresh);
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Append one finished chunk's encoded verdicts and maybe fsync.
  void append(std::size_t chunk_index, const std::vector<std::uint8_t>& data);

  /// fflush + fsync now (also called by the destructor).
  void flush();

 private:
  void fail(const char* what);

  std::string path_;
  std::FILE* file_ = nullptr;
  long fsync_interval_;
  long appends_since_sync_ = 0;
  bool dirty_ = false;
};

/// Atomically (re)write the sidecar at `path`: a fresh header plus
/// `chunks` go to `path + ".tmp"`, which is fsync'd and renamed over
/// `path`; the returned writer keeps appending to the renamed file. This
/// is how campaigns open their sidecar — a fresh run passes no chunks, a
/// resume passes the restored ones — so a crash during the rewrite leaves
/// the previous sidecar intact, and a pre-existing torn tail (which the
/// loader stops at) can never swallow appends made after it.
std::unique_ptr<CheckpointWriter> rewrite_checkpoint(
    const std::string& path, std::uint64_t spec_hash, std::size_t count,
    std::size_t chunk, long fsync_interval,
    const std::map<std::size_t, std::vector<std::uint8_t>>& chunks);

}  // namespace flopsim::fault
