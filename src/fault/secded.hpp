// SECDED(72,64): single-error-correct / double-error-detect Hamming code
// over a 64-bit word — the classic BRAM-protection code, and the fifth
// hardening scheme (fault::Scheme::kEcc).
//
// Construction: an extended Hamming code. Codeword positions 1..71 are the
// standard Hamming layout (check bits at the power-of-two positions 1, 2,
// 4, 8, 16, 32, 64; the 64 data bits fill the remaining positions in
// ascending order), plus an overall-parity bit at position 0. The syndrome
// of a single flipped position is that position's index, so correction is
// an index decode; a double flip leaves overall parity even with a nonzero
// syndrome, which is the detect-only signature.
//
// This header is dependency-light on purpose: kernel/pe.cpp includes it to
// protect the PE's BRAM accumulators without pulling the fault campaign
// layer (which itself depends on the kernel) into a cycle.
#pragma once

#include <cstdint>

#include "device/tech.hpp"
#include "fp/bits.hpp"

namespace flopsim::fault {

inline constexpr int kSecdedDataBits = 64;
inline constexpr int kSecdedCheckBits = 8;  ///< 7 Hamming + overall parity
inline constexpr int kSecdedWordBits = kSecdedDataBits + kSecdedCheckBits;

/// Check byte for a data word. Bit 0 is the overall-parity bit (codeword
/// position 0); bits 1..7 are the Hamming check bits at codeword positions
/// 1, 2, 4, 8, 16, 32, 64.
std::uint8_t secded_encode(fp::u64 data);

enum class SecdedStatus {
  kClean,           ///< no error
  kCorrectedData,   ///< single flip in a data bit, corrected
  kCorrectedCheck,  ///< single flip in a check bit, corrected
  kDoubleError,     ///< two flips: detected, not correctable
};

const char* to_string(SecdedStatus s);

struct SecdedDecode {
  fp::u64 data = 0;        ///< corrected data word
  std::uint8_t check = 0;  ///< corrected check byte
  SecdedStatus status = SecdedStatus::kClean;
  int syndrome = 0;  ///< raw Hamming syndrome (flipped codeword position)
};

SecdedDecode secded_decode(fp::u64 data, std::uint8_t check);

/// LUT-fabric cost of one encoder + one decoder/corrector: eight ~36-input
/// XOR trees each way, a 7->72 syndrome decode, and the correction XOR
/// row. The eight check bits themselves ride in the block RAM's parity
/// bits (Virtex-II BRAMs provide one parity bit per data byte — exactly
/// SECDED(72,64)'s budget), so no extra BRAM is charged.
device::Resources secded_area(const device::TechModel& tech,
                              device::Objective objective);

}  // namespace flopsim::fault
