// Single-event-upset fault description and the injector observer.
//
// The paper treats pipeline depth as a frequency/area/power trade-off; on a
// real SRAM-based fabric every pipeline register added is also one more
// state bit exposed to soft errors. This layer makes the cycle-accurate
// stack fault-injectable: a Fault names one bit of latched state (a stage
// latch lane bit, the DONE/valid bit, a carried exception-flag bit, or a
// PE BRAM accumulator bit) and the clock edge at which it flips. The
// FaultInjector applies a fault list through the post-latch / post-cycle
// observer hooks of rtl::PipelineSim and kernel::ProcessingElement — the
// zero-fault path stays bit-identical to an uninstrumented run.
#pragma once

#include <vector>

#include "kernel/pe.hpp"
#include "rtl/simulator.hpp"

namespace flopsim::fault {

/// Lane pseudo-indices addressing the non-data state of a stage latch.
inline constexpr int kValidLane = -1;  ///< the DONE shift-register bit
inline constexpr int kFlagsLane = -2;  ///< the carried exception-flag byte

enum class FaultSite {
  kStageLatch,   ///< a pipeline-stage output register of a unit
  kAccumulator,  ///< a PE BRAM accumulator word (bits [0,64) data; with
                 ///< SECDED, bits [64,72) address the ECC check byte)
  kConfig,       ///< a configuration-memory upset: the struck piece's
                 ///< stage output is rewired, forcing `stuck` under `mask`
                 ///< on one latch lane every cycle until repaired
};

const char* to_string(FaultSite site);

struct Fault {
  long cycle = 0;  ///< 0-based clock edge at which the bit flips (kConfig:
                   ///< the strike edge — corruption persists from here)
  FaultSite site = FaultSite::kStageLatch;
  /// Stage-latch index (kStageLatch/kConfig) or accumulator row
  /// (kAccumulator).
  int index = 0;
  /// Data lane in [0, rtl::kMaxSignals), or kValidLane / kFlagsLane
  /// (kStageLatch only). Ignored for kAccumulator.
  int lane = 0;
  int bit = 0;  ///< bit within the 64-bit lane / accumulator word
  // --- kConfig only -------------------------------------------------------
  fp::u64 mask = 0;   ///< lane bits driven by the rewired logic
  fp::u64 stuck = 0;  ///< value forced under `mask`
  /// First clock edge at which the configuration has been scrubbed back
  /// (corruption applies on edges [cycle, repair_cycle)); < 0 = never.
  long repair_cycle = -1;

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// One fault the injector actually applied, with the touched word before
/// and after the flip (the valid bit is reported as 0/1).
struct AppliedFault {
  Fault fault;
  fp::u64 before = 0;
  fp::u64 after = 0;
};

/// Applies a fault list through both observer hooks. One injector may be
/// attached to at most one PipelineSim and one ProcessingElement at a time
/// (stage faults go to the former, accumulator faults to the latter).
/// An injector with an empty (or exhausted) fault list never touches the
/// observed state.
class FaultInjector : public rtl::LatchObserver, public kernel::StorageObserver {
 public:
  FaultInjector() = default;
  explicit FaultInjector(std::vector<Fault> faults);

  void on_latch(long cycle, int stage, rtl::SignalSet& latch) override;
  void on_storage(long cycle, std::vector<fp::u64>& acc) override;
  void on_check_bits(long cycle, std::vector<std::uint8_t>& check) override;

  const std::vector<Fault>& faults() const { return faults_; }
  /// Faults whose cycle has been reached and whose target existed.
  const std::vector<AppliedFault>& applied() const { return applied_; }
  /// Re-arm every fault and clear the applied log (for replaying the same
  /// campaign on a reset pipeline).
  void rewind();

 private:
  void apply_latch_fault(std::size_t i, rtl::SignalSet& latch);

  std::vector<Fault> faults_;
  std::vector<char> armed_;   // parallel to faults_
  std::vector<char> logged_;  // kConfig: first application already logged
  std::vector<AppliedFault> applied_;
};

}  // namespace flopsim::fault
