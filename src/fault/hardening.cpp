#include "fault/hardening.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/secded.hpp"

namespace flopsim::fault {

const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kNone: return "none";
    case Scheme::kParity: return "parity";
    case Scheme::kResidue: return "residue";
    case Scheme::kDuplicate: return "dup";
    case Scheme::kTmr: return "tmr";
    case Scheme::kEcc: return "ecc";
  }
  return "unknown";
}

std::optional<Scheme> try_parse_scheme(const std::string& name) {
  if (name == "none") return Scheme::kNone;
  if (name == "parity") return Scheme::kParity;
  if (name == "residue") return Scheme::kResidue;
  if (name == "dup" || name == "duplicate") return Scheme::kDuplicate;
  if (name == "tmr") return Scheme::kTmr;
  if (name == "ecc" || name == "secded") return Scheme::kEcc;
  return std::nullopt;
}

Scheme parse_scheme(const std::string& name) {
  if (const std::optional<Scheme> s = try_parse_scheme(name)) return *s;
  throw std::invalid_argument("unknown hardening scheme: " + name);
}

HardeningCost hardening_cost(const units::FpUnit& unit, Scheme scheme) {
  const device::TechModel& tech = unit.config().tech;
  const device::Objective obj = unit.config().objective;
  HardeningCost c;
  const rtl::AreaBreakdown a = unit.area();
  c.base = a.total;
  c.base_freq_mhz = unit.timing().freq_mhz;
  c.base_power_mw_100 = power::unit_power(unit, 100.0).total_mw();
  c.freq_mhz = c.base_freq_mhz;

  const int w = unit.format().total_bits();
  const int stages = unit.stages();
  device::Resources oh;
  double extra_power = 0.0;
  switch (scheme) {
    case Scheme::kNone:
      break;
    case Scheme::kParity: {
      // One parity FF per stage latch word plus a LUT XOR reduction over
      // the latched bits, checked in shadow one stage downstream — the
      // check never sits on the data critical path.
      oh.ffs = 2 * stages;                 // generate + check pipeline bits
      oh.luts = (a.pipeline_ffs + 2) / 3;  // XOR tree, 3 fresh inputs/LUT
      oh.slices = (oh.luts + 1) / 2;
      extra_power = power::estimate_power(oh, 100.0, 0.5, tech).total_mw();
      break;
    }
    case Scheme::kResidue: {
      // Mod-3 residue generators over both operands and the result, a
      // 2-bit residue channel pipelined alongside the data, and a final
      // comparator. All off the data critical path.
      oh.luts = 2 * w;
      oh.ffs = 4 * stages;
      oh.slices = (oh.luts + 1) / 2 + stages;
      extra_power = power::estimate_power(oh, 100.0, 0.5, tech).total_mw();
      break;
    }
    case Scheme::kDuplicate: {
      device::Resources cmp = tech.comparator_area(w + 9, obj);
      cmp.ffs += 1;  // registered error flag
      oh = a.total + cmp;
      c.extra_latency_cycles = 1;  // registered compare stage
      extra_power = c.base_power_mw_100 +
                    power::estimate_power(cmp, 100.0, 0.5, tech).total_mw();
      break;
    }
    case Scheme::kTmr: {
      device::Resources voter;
      voter.luts = w + 9;  // one majority LUT per result/flag/valid bit
      voter.ffs = w + 9;   // registered voted output
      voter.slices = (voter.luts + 1) / 2;
      oh = a.total + a.total + voter;
      c.extra_latency_cycles = 1;  // registered vote stage
      // The vote stage must itself make timing (it never limits in
      // practice: one LUT level).
      const double voter_period =
          tech.lut_logic_delay(obj) + tech.register_overhead_ns();
      c.freq_mhz = std::min(c.base_freq_mhz, 1000.0 / voter_period);
      extra_power = 2.0 * c.base_power_mw_100 +
                    power::estimate_power(voter, 100.0, 0.5, tech).total_mw();
      break;
    }
    case Scheme::kEcc: {
      // SECDED(72,64) encoder + decoder/corrector on the accumulator BRAM
      // port; the check byte rides the BRAM parity bits (no extra BRAM).
      // The corrector adds one registered stage on the read path.
      oh = secded_area(tech, obj);
      c.extra_latency_cycles = 1;
      extra_power = power::estimate_power(oh, 100.0, 0.5, tech).total_mw();
      break;
    }
  }
  c.overhead = oh;
  c.total = c.base + oh;
  c.power_mw_100 = c.base_power_mw_100 + extra_power;
  c.area_factor = c.base.slices > 0
                      ? static_cast<double>(c.total.slices) / c.base.slices
                      : 1.0;
  c.freq_factor = c.base_freq_mhz > 0.0 ? c.freq_mhz / c.base_freq_mhz : 1.0;
  c.power_factor = c.base_power_mw_100 > 0.0
                       ? c.power_mw_100 / c.base_power_mw_100
                       : 1.0;
  return c;
}

namespace {

int copy_count(Scheme s) {
  switch (s) {
    case Scheme::kDuplicate: return 2;
    case Scheme::kTmr: return 3;
    default: return 1;
  }
}

bool same_output(const std::optional<units::UnitOutput>& a,
                 const std::optional<units::UnitOutput>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  return a->result == b->result && a->flags == b->flags;
}

}  // namespace

HardenedUnit::HardenedUnit(units::UnitKind kind, fp::FpFormat fmt,
                           const units::UnitConfig& cfg, Scheme scheme)
    : scheme_(scheme) {
  copies_.reserve(static_cast<std::size_t>(copy_count(scheme)));
  for (int i = 0; i < copy_count(scheme); ++i) copies_.emplace_back(kind, fmt, cfg);
}

FaultInjector& HardenedUnit::arm(const FaultCampaign& campaign) {
  injector_.emplace(campaign.make_injector());
  copies_.front().set_latch_observer(&*injector_);
  seen_applied_ = 0;
  return *injector_;
}

void HardenedUnit::disarm() {
  copies_.front().set_latch_observer(nullptr);
  injector_.reset();
  seen_applied_ = 0;
}

HardenedUnit::Output HardenedUnit::step(
    const std::optional<units::UnitInput>& in) {
  if (scheme_ == Scheme::kResidue && in.has_value()) {
    // The idealized residue channel carries the golden significand residue
    // alongside the data; model it with the combinational reference.
    expected_.push(copies_.front().evaluate(*in));
  }
  for (units::FpUnit& copy : copies_) copy.step(in);

  Output r;
  r.raw = copies_.front().output();
  switch (scheme_) {
    case Scheme::kNone:
    case Scheme::kEcc:  // storage scheme: the unit datapath is unhardened
      r.out = r.raw;
      break;
    case Scheme::kParity:
      r.out = r.raw;
      if (injector_.has_value() &&
          injector_->applied().size() > seen_applied_) {
        // Every latched word carries parity: any injected flip in a latch
        // (data, valid, or flags) trips the downstream check.
        seen_applied_ = injector_->applied().size();
        r.mismatch = true;
      }
      break;
    case Scheme::kResidue: {
      r.out = r.raw;
      if (r.raw.has_value() && !expected_.empty()) {
        const units::UnitOutput golden = expected_.front();
        expected_.pop();
        const fp::u64 frac_mask = copies_.front().format().frac_mask();
        r.mismatch = ((r.raw->result ^ golden.result) & frac_mask) != 0;
      }
      break;
    }
    case Scheme::kDuplicate: {
      const std::optional<units::UnitOutput> twin = copies_[1].output();
      r.mismatch = !same_output(r.raw, twin);
      r.out = r.raw;
      break;
    }
    case Scheme::kTmr: {
      const std::optional<units::UnitOutput> o0 = r.raw;
      const std::optional<units::UnitOutput> o1 = copies_[1].output();
      const std::optional<units::UnitOutput> o2 = copies_[2].output();
      r.mismatch = !same_output(o0, o1) || !same_output(o1, o2);
      if (o0.has_value() && o1.has_value() && o2.has_value()) {
        units::UnitOutput voted;
        voted.result = (o0->result & o1->result) | (o0->result & o2->result) |
                       (o1->result & o2->result);
        voted.flags = static_cast<std::uint8_t>((o0->flags & o1->flags) |
                                                (o0->flags & o2->flags) |
                                                (o1->flags & o2->flags));
        r.out = voted;
      } else {
        // DONE bits disagree: copies 1 and 2 are never injected, so the
        // majority is whatever they report.
        r.out = o1.has_value() == o2.has_value() ? o1 : o0;
      }
      break;
    }
  }
  if (r.mismatch) ++detections_;
  return r;
}

void HardenedUnit::reset() {
  for (units::FpUnit& copy : copies_) copy.reset();
  expected_ = {};
  detections_ = 0;
  seen_applied_ = 0;
}

}  // namespace flopsim::fault
