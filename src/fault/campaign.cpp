#include "fault/campaign.hpp"

#include <bit>
#include <cmath>
#include <random>
#include <stdexcept>

#include "fault/secded.hpp"
#include "obs/metrics.hpp"

namespace flopsim::fault {

namespace {

// Deterministic helpers on top of mt19937_64: the standard distributions
// are implementation-defined, so campaigns roll their own to keep a seed
// reproducible across toolchains.
std::uint64_t draw_below(std::mt19937_64& rng, std::uint64_t n) {
  return n == 0 ? 0 : rng() % n;
}

double draw_unit(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

long draw_poisson(std::mt19937_64& rng, double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    long k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= draw_unit(rng);
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation is fine at campaign scale.
  const double u1 = draw_unit(rng);
  const double u2 = draw_unit(rng);
  const double z =
      std::sqrt(-2.0 * std::log(u1 + 1e-18)) * std::cos(6.283185307179586 * u2);
  const double v = mean + std::sqrt(mean) * z;
  return v < 0.0 ? 0 : static_cast<long>(v + 0.5);
}

}  // namespace

long LatchProfile::total_bits() const {
  long bits = 0;
  for (const auto& stage : occupied) {
    for (fp::u64 mask : stage) bits += std::popcount(mask);
  }
  if (include_valid) bits += stages();
  if (include_flags) bits += 8L * stages();
  return bits;
}

LatchProfile profile_unit_latches(const units::FpUnit& unit, int vectors,
                                  std::uint64_t seed) {
  units::FpUnit probe = unit.clone();  // fresh pipeline; caller's untouched
  LatchProfile profile;
  profile.occupied.assign(static_cast<std::size_t>(probe.stages()), {});
  const std::vector<units::UnitInput> workload =
      campaign_workload(probe.kind(), probe.format(), vectors, seed);
  const int total = vectors + probe.latency() + 2;
  for (int t = 0; t < total; ++t) {
    if (t < vectors) {
      probe.step(workload[static_cast<std::size_t>(t)]);
    } else {
      probe.step(std::nullopt);
    }
    const std::vector<rtl::SignalSet>& latches = probe.latches();
    for (std::size_t s = 0; s < latches.size(); ++s) {
      for (int l = 0; l < rtl::kMaxSignals; ++l) {
        profile.occupied[s][static_cast<std::size_t>(l)] |= latches[s][l];
      }
    }
  }
  return profile;
}

std::vector<units::UnitInput> campaign_workload(units::UnitKind kind,
                                                fp::FpFormat fmt, int count,
                                                std::uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x5eu);
  std::vector<units::UnitInput> workload;
  workload.reserve(static_cast<std::size_t>(count));
  const fp::u64 mask = fmt.bits_mask();
  for (int i = 0; i < count; ++i) {
    units::UnitInput in;
    in.a = rng() & mask;
    in.b = rng() & mask;
    in.subtract = kind == units::UnitKind::kAdder && (i & 1) != 0;
    if (kind == units::UnitKind::kMac) in.c = rng() & mask;
    workload.push_back(in);
  }
  return workload;
}

namespace {

// Flatten the profile's occupied bits into (stage, lane, bit) triples so
// uniform sampling is an index draw.
struct BitSite {
  int stage;
  int lane;
  int bit;
};

std::vector<BitSite> flatten(const LatchProfile& profile) {
  std::vector<BitSite> sites;
  for (int s = 0; s < profile.stages(); ++s) {
    const auto& lanes = profile.occupied[static_cast<std::size_t>(s)];
    for (int l = 0; l < rtl::kMaxSignals; ++l) {
      fp::u64 mask = lanes[static_cast<std::size_t>(l)];
      while (mask != 0) {
        const int bit = std::countr_zero(mask);
        sites.push_back({s, l, bit});
        mask &= mask - 1;
      }
    }
    if (profile.include_valid) sites.push_back({s, kValidLane, 0});
    if (profile.include_flags) {
      for (int b = 0; b < 8; ++b) sites.push_back({s, kFlagsLane, b});
    }
  }
  return sites;
}

std::vector<Fault> place_faults(const LatchProfile& profile, long horizon,
                                long count, std::mt19937_64& rng) {
  const std::vector<BitSite> sites = flatten(profile);
  std::vector<Fault> faults;
  if (sites.empty() || horizon <= 0) return faults;
  faults.reserve(static_cast<std::size_t>(count));
  for (long i = 0; i < count; ++i) {
    const BitSite& site =
        sites[static_cast<std::size_t>(draw_below(rng, sites.size()))];
    Fault f;
    f.cycle = static_cast<long>(
        draw_below(rng, static_cast<std::uint64_t>(horizon)));
    f.site = FaultSite::kStageLatch;
    f.index = site.stage;
    f.lane = site.lane;
    f.bit = site.bit;
    faults.push_back(f);
  }
  return faults;
}

// Uniform draws over the profile's occupied *data* bits only (config upsets
// rewire datapath logic; the valid/flag shift registers are user state and
// already covered by kStageLatch). The stuck mask spans `mask_bits`
// occupied bits upward from the struck one; repair lands on the first
// scrub boundary after the strike.
std::vector<Fault> place_config_faults(const LatchProfile& profile,
                                       long horizon, long count,
                                       long scrub_period_cycles, int mask_bits,
                                       std::mt19937_64& rng) {
  std::vector<BitSite> sites;
  for (const BitSite& s : flatten(profile)) {
    if (s.lane >= 0) sites.push_back(s);
  }
  std::vector<Fault> faults;
  if (sites.empty() || horizon <= 0) return faults;
  faults.reserve(static_cast<std::size_t>(count));
  for (long i = 0; i < count; ++i) {
    const BitSite& site =
        sites[static_cast<std::size_t>(draw_below(rng, sites.size()))];
    const fp::u64 occupied =
        profile.occupied[static_cast<std::size_t>(site.stage)]
                        [static_cast<std::size_t>(site.lane)];
    const int width = mask_bits < 1 ? 1 : mask_bits;
    fp::u64 span = width >= 64 ? ~fp::u64{0}
                               : ((fp::u64{1} << width) - 1) << site.bit;
    Fault f;
    f.cycle = static_cast<long>(
        draw_below(rng, static_cast<std::uint64_t>(horizon)));
    f.site = FaultSite::kConfig;
    f.index = site.stage;
    f.lane = site.lane;
    f.bit = site.bit;
    f.mask = span & occupied;  // nonzero: the struck bit itself is occupied
    f.stuck = rng() & f.mask;
    f.repair_cycle =
        scrub_period_cycles > 0
            ? (f.cycle / scrub_period_cycles + 1) * scrub_period_cycles
            : -1;
    faults.push_back(f);
  }
  return faults;
}

const LatchProfile& require_profile(const CampaignSpec& spec) {
  if (spec.profile == nullptr) {
    throw std::invalid_argument("CampaignSpec: this source needs a profile");
  }
  return *spec.profile;
}

}  // namespace

FaultCampaign FaultCampaign::make(const CampaignSpec& spec) {
  FaultCampaign c = make_impl(spec);
  // Registry tallies only — draw sequences and fault lists are untouched.
  obs::Registry& reg = obs::Registry::global();
  reg.counter("fault.campaigns_built").inc();
  reg.counter("fault.faults_drawn").add(static_cast<long>(c.faults_.size()));
  return c;
}

FaultCampaign FaultCampaign::make_impl(const CampaignSpec& spec) {
  using Source = CampaignSpec::Source;
  FaultCampaign c;
  switch (spec.source) {
    case Source::kList:
      c.faults_ = spec.faults;
      return c;
    case Source::kRandom: {
      std::mt19937_64 rng(spec.seed);
      c.faults_ =
          place_faults(require_profile(spec), spec.horizon, spec.count, rng);
      return c;
    }
    case Source::kPoisson: {
      if (spec.rate < 0.0) {
        throw std::invalid_argument("FaultCampaign: negative upset rate");
      }
      const LatchProfile& profile = require_profile(spec);
      std::mt19937_64 rng(spec.seed);
      const double mean = spec.rate *
                          static_cast<double>(profile.total_bits()) *
                          static_cast<double>(spec.horizon);
      const long count = draw_poisson(rng, mean);
      c.faults_ = place_faults(profile, spec.horizon, count, rng);
      return c;
    }
    case Source::kAccumulator: {
      if (spec.rows <= 0 || spec.word_bits <= 0 ||
          spec.word_bits > kSecdedWordBits) {
        throw std::invalid_argument("FaultCampaign: bad accumulator geometry");
      }
      std::mt19937_64 rng(spec.seed);
      c.faults_.reserve(static_cast<std::size_t>(spec.count));
      for (int i = 0; i < spec.count; ++i) {
        Fault f;
        f.site = FaultSite::kAccumulator;
        f.cycle = static_cast<long>(draw_below(
            rng,
            static_cast<std::uint64_t>(spec.horizon > 0 ? spec.horizon : 1)));
        f.index = static_cast<int>(
            draw_below(rng, static_cast<std::uint64_t>(spec.rows)));
        f.bit = static_cast<int>(
            draw_below(rng, static_cast<std::uint64_t>(spec.word_bits)));
        c.faults_.push_back(f);
      }
      return c;
    }
    case Source::kCram: {
      std::mt19937_64 rng(spec.seed);
      c.faults_ = place_config_faults(require_profile(spec), spec.horizon,
                                      spec.count, spec.scrub_period_cycles,
                                      spec.mask_bits, rng);
      return c;
    }
  }
  throw std::invalid_argument("CampaignSpec: unknown source");
}

FaultCampaign FaultCampaign::from_list(std::vector<Fault> faults) {
  CampaignSpec spec;
  spec.source = CampaignSpec::Source::kList;
  spec.faults = std::move(faults);
  return make(spec);
}

FaultCampaign FaultCampaign::random(const LatchProfile& profile, long horizon,
                                    int count, std::uint64_t seed) {
  CampaignSpec spec;
  spec.source = CampaignSpec::Source::kRandom;
  spec.profile = &profile;
  spec.horizon = horizon;
  spec.count = count;
  spec.seed = seed;
  return make(spec);
}

FaultCampaign FaultCampaign::poisson(const LatchProfile& profile, long horizon,
                                     double upsets_per_bit_cycle,
                                     std::uint64_t seed) {
  CampaignSpec spec;
  spec.source = CampaignSpec::Source::kPoisson;
  spec.profile = &profile;
  spec.horizon = horizon;
  spec.rate = upsets_per_bit_cycle;
  spec.seed = seed;
  return make(spec);
}

FaultCampaign FaultCampaign::random_accumulator(int rows, int word_bits,
                                                long horizon, int count,
                                                std::uint64_t seed) {
  CampaignSpec spec;
  spec.source = CampaignSpec::Source::kAccumulator;
  spec.rows = rows;
  spec.word_bits = word_bits;
  spec.horizon = horizon;
  spec.count = count;
  spec.seed = seed;
  return make(spec);
}

FaultCampaign FaultCampaign::cram(const LatchProfile& profile, long horizon,
                                  int count, std::uint64_t seed,
                                  long scrub_period_cycles, int mask_bits) {
  CampaignSpec spec;
  spec.source = CampaignSpec::Source::kCram;
  spec.profile = &profile;
  spec.horizon = horizon;
  spec.count = count;
  spec.seed = seed;
  spec.scrub_period_cycles = scrub_period_cycles;
  spec.mask_bits = mask_bits;
  return make(spec);
}

}  // namespace flopsim::fault
