#include "fault/campaign.hpp"

#include <bit>
#include <cmath>
#include <random>
#include <stdexcept>

namespace flopsim::fault {

namespace {

// Deterministic helpers on top of mt19937_64: the standard distributions
// are implementation-defined, so campaigns roll their own to keep a seed
// reproducible across toolchains.
std::uint64_t draw_below(std::mt19937_64& rng, std::uint64_t n) {
  return n == 0 ? 0 : rng() % n;
}

double draw_unit(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

long draw_poisson(std::mt19937_64& rng, double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth: multiply uniforms until the product drops below e^-mean.
    const double limit = std::exp(-mean);
    long k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= draw_unit(rng);
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation is fine at campaign scale.
  const double u1 = draw_unit(rng);
  const double u2 = draw_unit(rng);
  const double z =
      std::sqrt(-2.0 * std::log(u1 + 1e-18)) * std::cos(6.283185307179586 * u2);
  const double v = mean + std::sqrt(mean) * z;
  return v < 0.0 ? 0 : static_cast<long>(v + 0.5);
}

}  // namespace

long LatchProfile::total_bits() const {
  long bits = 0;
  for (const auto& stage : occupied) {
    for (fp::u64 mask : stage) bits += std::popcount(mask);
  }
  if (include_valid) bits += stages();
  if (include_flags) bits += 8L * stages();
  return bits;
}

LatchProfile profile_unit_latches(units::FpUnit& unit, int vectors,
                                  std::uint64_t seed) {
  LatchProfile profile;
  profile.occupied.assign(static_cast<std::size_t>(unit.stages()), {});
  const std::vector<units::UnitInput> workload =
      campaign_workload(unit.kind(), unit.format(), vectors, seed);
  unit.reset();
  const int total = vectors + unit.latency() + 2;
  for (int t = 0; t < total; ++t) {
    if (t < vectors) {
      unit.step(workload[static_cast<std::size_t>(t)]);
    } else {
      unit.step(std::nullopt);
    }
    const std::vector<rtl::SignalSet>& latches = unit.latches();
    for (std::size_t s = 0; s < latches.size(); ++s) {
      for (int l = 0; l < rtl::kMaxSignals; ++l) {
        profile.occupied[s][static_cast<std::size_t>(l)] |= latches[s][l];
      }
    }
  }
  unit.reset();
  return profile;
}

std::vector<units::UnitInput> campaign_workload(units::UnitKind kind,
                                                fp::FpFormat fmt, int count,
                                                std::uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x5eu);
  std::vector<units::UnitInput> workload;
  workload.reserve(static_cast<std::size_t>(count));
  const fp::u64 mask = fmt.bits_mask();
  for (int i = 0; i < count; ++i) {
    units::UnitInput in;
    in.a = rng() & mask;
    in.b = rng() & mask;
    in.subtract = kind == units::UnitKind::kAdder && (i & 1) != 0;
    if (kind == units::UnitKind::kMac) in.c = rng() & mask;
    workload.push_back(in);
  }
  return workload;
}

FaultCampaign FaultCampaign::from_list(std::vector<Fault> faults) {
  FaultCampaign c;
  c.faults_ = std::move(faults);
  return c;
}

namespace {

// Flatten the profile's occupied bits into (stage, lane, bit) triples so
// uniform sampling is an index draw.
struct BitSite {
  int stage;
  int lane;
  int bit;
};

std::vector<BitSite> flatten(const LatchProfile& profile) {
  std::vector<BitSite> sites;
  for (int s = 0; s < profile.stages(); ++s) {
    const auto& lanes = profile.occupied[static_cast<std::size_t>(s)];
    for (int l = 0; l < rtl::kMaxSignals; ++l) {
      fp::u64 mask = lanes[static_cast<std::size_t>(l)];
      while (mask != 0) {
        const int bit = std::countr_zero(mask);
        sites.push_back({s, l, bit});
        mask &= mask - 1;
      }
    }
    if (profile.include_valid) sites.push_back({s, kValidLane, 0});
    if (profile.include_flags) {
      for (int b = 0; b < 8; ++b) sites.push_back({s, kFlagsLane, b});
    }
  }
  return sites;
}

std::vector<Fault> place_faults(const LatchProfile& profile, long horizon,
                                long count, std::mt19937_64& rng) {
  const std::vector<BitSite> sites = flatten(profile);
  std::vector<Fault> faults;
  if (sites.empty() || horizon <= 0) return faults;
  faults.reserve(static_cast<std::size_t>(count));
  for (long i = 0; i < count; ++i) {
    const BitSite& site =
        sites[static_cast<std::size_t>(draw_below(rng, sites.size()))];
    Fault f;
    f.cycle = static_cast<long>(
        draw_below(rng, static_cast<std::uint64_t>(horizon)));
    f.site = FaultSite::kStageLatch;
    f.index = site.stage;
    f.lane = site.lane;
    f.bit = site.bit;
    faults.push_back(f);
  }
  return faults;
}

}  // namespace

FaultCampaign FaultCampaign::random(const LatchProfile& profile, long horizon,
                                    int count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  FaultCampaign c;
  c.faults_ = place_faults(profile, horizon, count, rng);
  return c;
}

FaultCampaign FaultCampaign::poisson(const LatchProfile& profile, long horizon,
                                     double upsets_per_bit_cycle,
                                     std::uint64_t seed) {
  if (upsets_per_bit_cycle < 0.0) {
    throw std::invalid_argument("FaultCampaign: negative upset rate");
  }
  std::mt19937_64 rng(seed);
  const double mean = upsets_per_bit_cycle *
                      static_cast<double>(profile.total_bits()) *
                      static_cast<double>(horizon);
  const long count = draw_poisson(rng, mean);
  FaultCampaign c;
  c.faults_ = place_faults(profile, horizon, count, rng);
  return c;
}

FaultCampaign FaultCampaign::random_accumulator(int rows, int word_bits,
                                                long horizon, int count,
                                                std::uint64_t seed) {
  if (rows <= 0 || word_bits <= 0 || word_bits > 64) {
    throw std::invalid_argument("FaultCampaign: bad accumulator geometry");
  }
  std::mt19937_64 rng(seed);
  FaultCampaign c;
  c.faults_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Fault f;
    f.site = FaultSite::kAccumulator;
    f.cycle = static_cast<long>(
        draw_below(rng, static_cast<std::uint64_t>(horizon > 0 ? horizon : 1)));
    f.index = static_cast<int>(draw_below(rng, static_cast<std::uint64_t>(rows)));
    f.bit = static_cast<int>(
        draw_below(rng, static_cast<std::uint64_t>(word_bits)));
    c.faults_.push_back(f);
  }
  return c;
}

}  // namespace flopsim::fault
